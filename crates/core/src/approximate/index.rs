//! The assembled approximate index (paper §5) and its `O(log N)` online
//! lookup (MDONLINE, Algorithm 11).

use std::time::{Duration, Instant};

use fairrank_datasets::{Dataset, RankWorkspace};
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::grid::{AngleGrid, CellId, PartitionScheme};
use fairrank_geometry::polar::to_cartesian_into;
use fairrank_geometry::sphere::approx_error_bound;

use fairrank_geometry::hyperplane::Hyperplane;

use crate::approximate::{cellplane, coloring, markcell};
use crate::error::FairRankError;
use crate::md::hyperpolar::{exchange_hyperplane, exchange_hyperplanes_limited};
use crate::pruning;
use crate::update::{DatasetUpdate, UpdateCtx};

/// Options for [`ApproxIndex::build`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Target number of grid cells — the paper's user-controllable `N`
    /// (its experiments use 40,000).
    pub n_cells: usize,
    /// Grid scheme: the paper's equal-area partitioning, or a uniform
    /// grid for the ablation.
    pub scheme: PartitionScheme,
    /// Cap on the number of exchange hyperplanes (`None` = all).
    pub max_hyperplanes: Option<usize>,
    /// Apply §8 top-k pruning when the oracle exposes a bound.
    pub prune_top_k: bool,
    /// Cap on the hyperplanes considered *per cell* during MARKCELL.
    ///
    /// The paper's configuration (`N = 40,000` cells) keeps every cell
    /// small enough that few hyperplanes cross it (its Figure 21); with
    /// coarser grids a busy cell can see hundreds of crossing hyperplanes
    /// and the per-cell arrangement grows as `|HC[c]|^{d−1}`. Since every
    /// probe is validated against the real oracle, truncating the per-cell
    /// hyperplane list is *sound* — at worst a sliver region inside the
    /// cell is missed and the cell falls through to CELLCOLORING.
    pub max_hyperplanes_per_cell: Option<usize>,
    /// Worker threads for the MARKCELL phase (the build's dominant cost;
    /// paper Figures 22–23). Cells are searched independently and results
    /// merged in cell order, so the produced index is *identical* for any
    /// thread count. `None` = all available cores.
    pub threads: Option<usize>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            n_cells: 40_000,
            scheme: PartitionScheme::EqualArea,
            max_hyperplanes: None,
            prune_top_k: false,
            max_hyperplanes_per_cell: Some(48),
            threads: None,
        }
    }
}

/// Offline construction statistics — the per-phase series of the paper's
/// Figures 20–23.
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Number of exchange hyperplanes (`|H|`).
    pub hyperplane_count: usize,
    /// Number of grid cells.
    pub cell_count: usize,
    /// Cells satisfied directly by MARKCELL (`C` in §5.1).
    pub satisfied_cells: usize,
    /// Cells colored by CELLCOLORING (`C̄` in §5.2).
    pub colored_cells: usize,
    /// Total oracle invocations during the build.
    pub oracle_calls: u64,
    /// Per-cell `|HC[c]|` distribution, sorted ascending (Figure 21).
    pub hc_histogram: Vec<usize>,
    /// Time constructing hyperplanes (part of Figure 20/22).
    pub hyperplane_time: Duration,
    /// Time assigning hyperplanes to cells (CELLPLANE×; Figures 22–23).
    pub cellplane_time: Duration,
    /// Time searching cells for satisfactory functions (MARKCELL).
    pub markcell_time: Duration,
    /// Time coloring unsatisfied cells (CELLCOLORING).
    pub coloring_time: Duration,
}

impl BuildStats {
    /// Total preprocessing time.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.hyperplane_time + self.cellplane_time + self.markcell_time + self.coloring_time
    }
}

/// One MARKCELL probe, remembered for incremental maintenance: where the
/// oracle was asked, what it said, and the score of the ranked `k`-th
/// item at that point (`NaN` when the oracle exposes no top-k bound).
/// The threshold is the verdict-invariance certificate: an updated item
/// scoring strictly below it cannot enter the inspected prefix, so the
/// stored verdict provably survives the update.
#[derive(Debug, Clone)]
pub(crate) struct ProbeRecord {
    pub(crate) angles: Vec<f64>,
    pub(crate) verdict: bool,
    pub(crate) threshold: f64,
}

/// Per-worker probe state for MARKCELL: ranking workspace, reusable
/// weight buffer, the worker's oracle-call tally, and the probe log of
/// the cell currently being searched.
struct ProbeCtx {
    workspace: RankWorkspace,
    weights: Vec<f64>,
    calls: u64,
    log: Vec<ProbeRecord>,
}

impl ProbeCtx {
    fn new(ds: &Dataset) -> ProbeCtx {
        ProbeCtx {
            workspace: RankWorkspace::with_capacity(ds.len()),
            weights: Vec::with_capacity(ds.dim()),
            calls: 0,
            log: Vec::new(),
        }
    }
}

/// The offline artifact: a partition of the angle space with one
/// validated satisfactory function per cell (where one exists).
#[derive(Debug, Clone)]
pub struct ApproxIndex {
    pub(crate) grid: AngleGrid,
    /// Per cell: index into `functions`, or `None` when the fairness
    /// constraint is globally unsatisfiable.
    pub(crate) assigned: Vec<Option<u32>>,
    /// Distinct satisfactory functions (angle vectors), each validated
    /// against the real oracle during the build.
    pub(crate) functions: Vec<Vec<f64>>,
    pub(crate) stats: BuildStats,
    /// The options the index was built with (reused by update rebuilds).
    pub(crate) opts: BuildOptions,
    /// Which cells MARKCELL satisfied directly (as opposed to coloring).
    /// Maintenance state — empty on a decoded index.
    pub(crate) satisfied: Vec<bool>,
    /// Per-cell MARKCELL probe logs. Maintenance state — empty on a
    /// decoded index (the first update then pays one full rebuild, which
    /// re-seeds it).
    pub(crate) probe_log: Vec<Vec<ProbeRecord>>,
    /// Per cell: whether the MARKCELL search saw the cell's *complete*
    /// hyperplane list (i.e. `max_hyperplanes_per_cell` did not truncate
    /// it), so an unsatisfied verdict covers every sub-region of the
    /// cell. Region-identity state — empty on a decoded index (no key
    /// is then certified for any cell).
    pub(crate) decided: Vec<bool>,
}

impl ApproxIndex {
    /// Run the full §5 preprocessing pipeline.
    ///
    /// # Errors
    /// [`FairRankError::TooFewAttributes`] for datasets with fewer than
    /// two scoring attributes.
    pub fn build(
        ds: &Dataset,
        oracle: &dyn FairnessOracle,
        opts: &BuildOptions,
    ) -> Result<ApproxIndex, FairRankError> {
        if ds.dim() < 2 {
            return Err(FairRankError::TooFewAttributes);
        }
        let mut stats = BuildStats::default();
        let workers = opts
            .threads
            .unwrap_or_else(crate::parallel::all_cores)
            .max(1);

        // Phase 1: exchange hyperplanes. A cap stops the enumeration at
        // exactly the first `cap` hyperplanes of the canonical order
        // (identical to generating all and truncating, without the O(n²)
        // tail); uncapped generation fans out over the worker pool with a
        // bit-identical in-order merge.
        let t0 = Instant::now();
        let hyperplanes = match (opts.prune_top_k, oracle.top_k_bound()) {
            (true, Some(k)) => {
                let keep = pruning::top_k_candidate_items(ds, k);
                exchange_hyperplanes_limited(&ds.subset(&keep), opts.max_hyperplanes, workers)
            }
            _ => exchange_hyperplanes_limited(ds, opts.max_hyperplanes, workers),
        };
        stats.hyperplane_count = hyperplanes.len();
        stats.hyperplane_time = t0.elapsed();

        // Phase 2: CELLPLANE× — hyperplane ↔ cell assignment.
        let t1 = Instant::now();
        let grid = match opts.scheme {
            PartitionScheme::EqualArea => AngleGrid::equal_area(ds.dim(), opts.n_cells),
            PartitionScheme::Uniform => AngleGrid::uniform(ds.dim(), opts.n_cells),
        };
        let hc = cellplane::hyperplanes_per_cell(&grid, &hyperplanes);
        stats.cell_count = grid.cell_count();
        stats.hc_histogram = cellplane::crossing_histogram(&hc);
        stats.cellplane_time = t1.elapsed();

        // Phase 3: MARKCELL with early stop, parallel over cells. Cells
        // are independent, so per-cell outcomes are deterministic and the
        // merge below (in cell order) yields the same index for any
        // thread count. Each worker owns a ProbeCtx — a RankWorkspace
        // plus a weights buffer — so the steady probe path performs zero
        // heap allocations, and the oracle's top-k bound (when exposed)
        // turns each probe's full sort into a partial top-k ranking. The
        // probe *verdicts* are identical either way, so the built index
        // is bit-identical to the per-probe path.
        let t2 = Instant::now();
        let n_threads = workers.min(grid.cell_count().max(1));
        let next_cell = std::sync::atomic::AtomicU32::new(0);
        let cell_count = grid.cell_count() as CellId;
        let search_cell = |cell: CellId, ctx: &mut ProbeCtx| -> Option<Vec<f64>> {
            let cell_hc = &hc[cell as usize];
            let cell_hc = match opts.max_hyperplanes_per_cell {
                Some(cap) if cell_hc.len() > cap => &cell_hc[..cap],
                _ => cell_hc.as_slice(),
            };
            search_one_cell(ds, oracle, &grid, cell, cell_hc, &hyperplanes, ctx)
        };
        let mut found: Vec<(CellId, Option<Vec<f64>>, Vec<ProbeRecord>)> = Vec::new();
        let mut oracle_calls = 0u64;
        if n_threads <= 1 {
            let mut ctx = ProbeCtx::new(ds);
            for cell in 0..cell_count {
                let f = search_cell(cell, &mut ctx);
                found.push((cell, f, std::mem::take(&mut ctx.log)));
            }
            oracle_calls = ctx.calls;
        } else {
            let results = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n_threads);
                for _ in 0..n_threads {
                    let next_cell = &next_cell;
                    let search_cell = &search_cell;
                    handles.push(scope.spawn(move || {
                        let mut local: Vec<(CellId, Option<Vec<f64>>, Vec<ProbeRecord>)> =
                            Vec::new();
                        let mut ctx = ProbeCtx::new(ds);
                        loop {
                            let cell = next_cell.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if cell >= cell_count {
                                break;
                            }
                            let f = search_cell(cell, &mut ctx);
                            local.push((cell, f, std::mem::take(&mut ctx.log)));
                        }
                        (local, ctx.calls)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("markcell worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (local, calls) in results {
                oracle_calls += calls;
                found.extend(local);
            }
            found.sort_unstable_by_key(|&(cell, _, _)| cell);
        }
        let mut index = assemble(grid, found, opts.clone());
        index.decided = decided_mask(&hc, opts.max_hyperplanes_per_cell);
        index.stats = stats;
        index.stats.oracle_calls = oracle_calls;
        index.stats.satisfied_cells = index.functions.len();
        index.stats.markcell_time = t2.elapsed();

        // Phase 4: CELLCOLORING.
        let t3 = Instant::now();
        index.stats.colored_cells =
            coloring::color_cells(&index.grid, &mut index.assigned, &index.functions);
        index.stats.coloring_time = t3.elapsed();

        // Re-export the BuildStats clocks through the global telemetry
        // registry (mirrored, not re-timed).
        for (phase, d) in [
            ("hyperplanes", index.stats.hyperplane_time),
            ("cellplanes", index.stats.cellplane_time),
            ("markcells", index.stats.markcell_time),
            ("coloring", index.stats.coloring_time),
        ] {
            crate::buildtel::mirror_phase("md_approx", phase, d);
        }

        Ok(index)
    }

    /// Whether this index carries the maintenance state (probe logs,
    /// satisfied mask) the incremental update path needs. False for
    /// decoded indexes until their first (rebuilding) update re-seeds it.
    #[must_use]
    pub fn is_maintainable(&self) -> bool {
        self.probe_log.len() == self.grid.cell_count()
            && self.opts.max_hyperplanes.is_none()
            && !self.opts.prune_top_k
    }

    /// Incremental maintenance through one dataset update, bit-identical
    /// to `ApproxIndex::build(ctx.ds, ctx.oracle, &self.opts)`:
    ///
    /// 1. **Delta marking.** Only the hyperplanes of pairs involving the
    ///    updated item change; cells they cross (in the old or new
    ///    configuration) are the only cells whose per-cell search inputs
    ///    differ, so only they *must* be re-searched.
    /// 2. **Certificates.** Every other cell replays its recorded probes:
    ///    a probe whose threshold proves the updated item stays out of
    ///    the oracle's inspected prefix keeps its verdict with zero
    ///    oracle work; the rest are re-verified through one batched
    ///    oracle pass ([`crate::probes`]).
    /// 3. **Recoloring.** Cells whose verdicts all survived keep their
    ///    MARKCELL outcome verbatim; changed cells re-run the per-cell
    ///    search; CELLCOLORING then re-propagates — only the cells whose
    ///    satisfaction verdict could change are ever re-searched.
    ///
    /// # Errors
    /// None currently; signature reserves the right for rebuild-style
    /// fallbacks to fail.
    pub(crate) fn maintain(
        &mut self,
        update: &DatasetUpdate,
        ctx: &UpdateCtx<'_>,
    ) -> Result<(), FairRankError> {
        let n_cells = self.grid.cell_count();

        // 1. Delta hyperplanes → cells whose search inputs changed.
        let mut delta: Vec<Hyperplane> = Vec::new();
        {
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            let mut push_pairs = |ds: &Dataset, x: usize| {
                for j in 0..ds.len() {
                    if j != x {
                        ds.row_into(j.min(x), &mut lo);
                        ds.row_into(j.max(x), &mut hi);
                        delta.extend(exchange_hyperplane(&lo, &hi));
                    }
                }
            };
            match update {
                DatasetUpdate::Insert { .. } => push_pairs(ctx.ds, ctx.ds.len() - 1),
                DatasetUpdate::Remove { item } => push_pairs(ctx.old, *item as usize),
                DatasetUpdate::Rescore { item, .. } => {
                    push_pairs(ctx.old, *item as usize);
                    push_pairs(ctx.ds, *item as usize);
                }
            }
        }
        let delta_hc = cellplane::hyperplanes_per_cell(&self.grid, &delta);
        let mut dirty: Vec<bool> = delta_hc.iter().map(|l| !l.is_empty()).collect();

        // Fresh geometry for the re-searched cells (oracle-free).
        let workers = self
            .opts
            .threads
            .unwrap_or_else(crate::parallel::all_cores)
            .max(1);
        let hyperplanes = exchange_hyperplanes_limited(ctx.ds, None, workers);
        let hc = cellplane::hyperplanes_per_cell(&self.grid, &hyperplanes);

        // 2. Replay unaffected cells: certificate or batched re-check.
        let cert_k = ctx
            .oracle
            .top_k_bound()
            .filter(|&k| k > 0 && k < ctx.ds.len() && k < ctx.old.len());
        let mut recheck: Vec<(usize, usize)> = Vec::new();
        let mut candidates: Vec<Vec<f64>> = Vec::new();
        for (c, log) in self.probe_log.iter().enumerate() {
            if dirty[c] {
                continue;
            }
            for (pi, rec) in log.iter().enumerate() {
                if !probe_certified(update, ctx, rec, cert_k.is_some()) {
                    recheck.push((c, pi));
                    candidates.push(rec.angles.clone());
                }
            }
        }
        let fresh = crate::probes::batch_verdicts_and_thresholds(ctx.ds, ctx.oracle, &candidates);
        let mut oracle_calls = fresh.len() as u64;
        for ((c, pi), (verdict, threshold)) in recheck.into_iter().zip(fresh) {
            let rec = &mut self.probe_log[c][pi];
            if rec.verdict != verdict {
                dirty[c] = true;
            }
            rec.verdict = verdict;
            rec.threshold = threshold;
        }

        // 3. Re-search changed cells (fanned across the worker pool —
        // cells are independent and the results are merged back in cell
        // order, so the maintained index is identical for any thread
        // count), keep the rest, recolor.
        let dirty_cells: Vec<CellId> = (0..n_cells as CellId)
            .filter(|&c| dirty[c as usize])
            .collect();
        let search_dirty = |cell: CellId, pc: &mut ProbeCtx| -> Option<Vec<f64>> {
            let cell_hc = &hc[cell as usize];
            let cell_hc = match self.opts.max_hyperplanes_per_cell {
                Some(cap) if cell_hc.len() > cap => &cell_hc[..cap],
                _ => cell_hc.as_slice(),
            };
            search_one_cell(
                ctx.ds,
                ctx.oracle,
                &self.grid,
                cell,
                cell_hc,
                &hyperplanes,
                pc,
            )
        };
        let n_threads = workers.min(dirty_cells.len().max(1));
        let mut searched: Vec<(CellId, Option<Vec<f64>>, Vec<ProbeRecord>)>;
        if n_threads <= 1 {
            let mut probe_ctx = ProbeCtx::new(ctx.ds);
            searched = Vec::with_capacity(dirty_cells.len());
            for &c in &dirty_cells {
                let f = search_dirty(c, &mut probe_ctx);
                searched.push((c, f, std::mem::take(&mut probe_ctx.log)));
            }
            oracle_calls += probe_ctx.calls;
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let dirty_cells = &dirty_cells;
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_threads)
                    .map(|_| {
                        let next = &next;
                        let search_dirty = &search_dirty;
                        scope.spawn(move || {
                            let mut local: Vec<(CellId, Option<Vec<f64>>, Vec<ProbeRecord>)> =
                                Vec::new();
                            let mut pc = ProbeCtx::new(ctx.ds);
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(&c) = dirty_cells.get(i) else {
                                    break;
                                };
                                let f = search_dirty(c, &mut pc);
                                local.push((c, f, std::mem::take(&mut pc.log)));
                            }
                            (local, pc.calls)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("maintenance worker panicked"))
                    .collect::<Vec<_>>()
            });
            searched = Vec::with_capacity(dirty_cells.len());
            for (local, calls) in results {
                oracle_calls += calls;
                searched.extend(local);
            }
            searched.sort_unstable_by_key(|&(cell, _, _)| cell);
        }
        let mut searched = searched.into_iter();
        let mut found: Vec<(CellId, Option<Vec<f64>>, Vec<ProbeRecord>)> =
            Vec::with_capacity(n_cells);
        for (c, &cell_dirty) in dirty.iter().enumerate() {
            if cell_dirty {
                let entry = searched.next().expect("one search result per dirty cell");
                debug_assert_eq!(entry.0 as usize, c);
                found.push(entry);
            } else {
                let f = self.satisfied[c].then(|| {
                    let fi = self.assigned[c].expect("satisfied cells are assigned");
                    self.functions[fi as usize].clone()
                });
                let log = std::mem::take(&mut self.probe_log[c]);
                found.push((c as CellId, f, log));
            }
        }

        let stats = self.stats.clone();
        *self = assemble(self.grid.clone(), found, self.opts.clone());
        self.decided = decided_mask(&hc, self.opts.max_hyperplanes_per_cell);
        self.stats = stats;
        self.stats.hyperplane_count = hyperplanes.len();
        self.stats.hc_histogram = cellplane::crossing_histogram(&hc);
        self.stats.oracle_calls += oracle_calls;
        self.stats.satisfied_cells = self.functions.len();
        self.stats.colored_cells =
            coloring::color_cells(&self.grid, &mut self.assigned, &self.functions);
        Ok(())
    }

    /// MDONLINE's core: the satisfactory function assigned to the cell
    /// containing `angles`, or `None` when the constraint is globally
    /// unsatisfiable. `O(log N)`.
    #[must_use]
    pub fn lookup(&self, angles: &[f64]) -> Option<&[f64]> {
        let cell = self.grid.locate(angles);
        self.assigned[cell as usize].map(|f| self.functions[f as usize].as_slice())
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &AngleGrid {
        &self.grid
    }

    /// Build statistics.
    #[must_use]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The distinct satisfactory functions discovered by MARKCELL
    /// (each validated against the oracle during the build).
    #[must_use]
    pub fn functions(&self) -> &[Vec<f64>] {
        &self.functions
    }

    /// Whether at least one satisfactory function exists.
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        !self.functions.is_empty()
    }

    /// The Theorem 6 bound on `θ_app − θ_opt` for this index.
    #[must_use]
    pub fn error_bound(&self) -> f64 {
        approx_error_bound(self.grid.dim() + 1, self.grid.cell_count())
    }
}

/// One cell's MARKCELL search, recording every probe into `ctx.log`
/// (cleared first). The shared kernel of [`ApproxIndex::build`] and
/// [`ApproxIndex::maintain`] — identical inputs produce identical
/// outcomes *and* identical probe sequences, which is what makes replay
/// sound.
fn search_one_cell(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
    grid: &AngleGrid,
    cell: CellId,
    cell_hc: &[u32],
    hyperplanes: &[Hyperplane],
    ctx: &mut ProbeCtx,
) -> Option<Vec<f64>> {
    let top_k = oracle.top_k_bound();
    let kth = match top_k {
        Some(k) if k > 0 && k <= ds.len() => k,
        _ => 0,
    };
    let ProbeCtx {
        workspace,
        weights,
        calls,
        log,
    } = ctx;
    log.clear();
    let mut probe = |angles: &[f64]| {
        *calls += 1;
        to_cartesian_into(1.0, angles, weights);
        let ranking = workspace.rank_with_bound(ds, weights, top_k);
        let threshold = if kth > 0 {
            ds.score(weights, ranking[kth - 1] as usize)
        } else {
            f64::NAN
        };
        let verdict = oracle.is_satisfactory(ranking);
        log.push(ProbeRecord {
            angles: angles.to_vec(),
            verdict,
            threshold,
        });
        verdict
    };
    markcell::find_satisfactory(grid, cell, cell_hc, hyperplanes, &mut probe)
}

/// Assemble per-cell MARKCELL outcomes (in cell order) into the index
/// arrays — the exact layout [`ApproxIndex::build`] has always produced:
/// one function per directly-satisfied cell, pushed in cell order.
fn assemble(
    grid: AngleGrid,
    found: Vec<(CellId, Option<Vec<f64>>, Vec<ProbeRecord>)>,
    opts: BuildOptions,
) -> ApproxIndex {
    let n_cells = grid.cell_count();
    let mut assigned: Vec<Option<u32>> = vec![None; n_cells];
    let mut functions: Vec<Vec<f64>> = Vec::new();
    let mut satisfied = vec![false; n_cells];
    let mut probe_log: Vec<Vec<ProbeRecord>> = vec![Vec::new(); n_cells];
    for (cell, f, log) in found {
        probe_log[cell as usize] = log;
        if let Some(f) = f {
            satisfied[cell as usize] = true;
            assigned[cell as usize] = Some(functions.len() as u32);
            functions.push(f);
        }
    }
    ApproxIndex {
        grid,
        assigned,
        functions,
        stats: BuildStats::default(),
        opts,
        satisfied,
        probe_log,
        decided: Vec::new(),
    }
}

/// The per-cell completeness mask behind region identity: `true` iff the
/// cell's hyperplane list survived the `max_hyperplanes_per_cell` cap
/// intact, so its MARKCELL verdict speaks for the whole cell. Recomputed
/// after every (re)assembly from the same `hc` the search consumed.
fn decided_mask(hc: &[Vec<u32>], cap: Option<usize>) -> Vec<bool> {
    hc.iter()
        .map(|cell_hc| cap.is_none_or(|cap| cell_hc.len() <= cap))
        .collect()
}

/// Can this probe's stored verdict provably survive the update? True
/// only when the updated item's score stays strictly outside the
/// oracle's inspected top-k prefix at the probe point (ties resolved by
/// the ranking's id tie-break: an inserted item carries the largest id,
/// so a tie with the `k`-th score still lands below it).
fn probe_certified(
    update: &DatasetUpdate,
    ctx: &UpdateCtx<'_>,
    rec: &ProbeRecord,
    k_stable: bool,
) -> bool {
    if !k_stable || !rec.threshold.is_finite() {
        return false;
    }
    let w = fairrank_geometry::polar::to_cartesian(1.0, &rec.angles);
    match update {
        DatasetUpdate::Insert { .. } => ctx.ds.score(&w, ctx.ds.len() - 1) <= rec.threshold,
        DatasetUpdate::Remove { item } => ctx.old.score(&w, *item as usize) < rec.threshold,
        DatasetUpdate::Rescore { item, .. } => {
            ctx.old.score(&w, *item as usize) < rec.threshold
                && ctx.ds.score(&w, *item as usize) < rec.threshold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::{FnOracle, Proportionality};
    use fairrank_geometry::polar::{angular_distance, to_cartesian, to_polar};

    fn build_small(
        bias: f64,
        oracle_cap: usize,
        n_cells: usize,
    ) -> (Dataset, Proportionality, ApproxIndex) {
        let ds = generic::uniform(40, 3, bias, 99);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 8).with_max_count(0, oracle_cap);
        let idx = ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells,
                ..Default::default()
            },
        )
        .unwrap();
        (ds, oracle, idx)
    }

    #[test]
    fn all_satisfactory_assigns_every_cell() {
        let ds = generic::uniform(20, 3, 0.0, 5);
        let o = FnOracle::new("always", |_: &[u32]| true);
        let idx = ApproxIndex::build(
            &ds,
            &o,
            &BuildOptions {
                n_cells: 150,
                max_hyperplanes: Some(40),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(idx.is_satisfiable());
        assert_eq!(idx.stats().satisfied_cells, idx.stats().cell_count);
        assert_eq!(idx.stats().colored_cells, 0);
        assert!(idx.lookup(&[0.3, 0.4]).is_some());
    }

    #[test]
    fn never_satisfactory_lookup_none() {
        let ds = generic::uniform(15, 3, 0.0, 6);
        let o = FnOracle::new("never", |_: &[u32]| false);
        let idx = ApproxIndex::build(
            &ds,
            &o,
            &BuildOptions {
                n_cells: 100,
                max_hyperplanes: Some(30),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!idx.is_satisfiable());
        assert!(idx.lookup(&[0.3, 0.4]).is_none());
        assert_eq!(idx.stats().colored_cells, 0);
    }

    #[test]
    fn every_cell_gets_function_when_satisfiable() {
        let (_, _, idx) = build_small(0.8, 4, 200);
        assert!(idx.is_satisfiable());
        for c in 0..idx.grid().cell_count() as CellId {
            assert!(
                idx.assigned[c as usize].is_some(),
                "cell {c} left unassigned"
            );
        }
        assert_eq!(
            idx.stats().satisfied_cells + idx.stats().colored_cells,
            idx.stats().cell_count
        );
    }

    #[test]
    fn thread_count_does_not_change_the_index() {
        // MARKCELL parallelism must be invisible in the artifact: same
        // assignments, same functions, same oracle-call count.
        let ds = generic::uniform(40, 3, 0.85, 7);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 8).with_max_count(0, 4);
        let build = |threads: Option<usize>| {
            ApproxIndex::build(
                &ds,
                &oracle,
                &BuildOptions {
                    n_cells: 150,
                    max_hyperplanes: Some(200),
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let sequential = build(Some(1));
        let parallel = build(Some(4));
        assert_eq!(sequential.functions(), parallel.functions());
        assert_eq!(sequential.assigned, parallel.assigned);
        assert_eq!(
            sequential.stats().oracle_calls,
            parallel.stats().oracle_calls
        );
    }

    #[test]
    fn assigned_functions_are_satisfactory() {
        use fairrank_fairness::FairnessOracle as _;
        let (ds, oracle, idx) = build_small(0.8, 4, 150);
        for f in idx.functions() {
            let w = to_cartesian(1.0, f);
            assert!(
                oracle.is_satisfactory(&ds.rank(&w)),
                "stored function {f:?} is not satisfactory"
            );
        }
    }

    #[test]
    fn lookup_returns_nearby_function_for_satisfied_cells() {
        let (_, _, idx) = build_small(0.8, 4, 200);
        // For a cell satisfied directly, the assigned function lies inside
        // that very cell, so its distance to the cell center is at most
        // the cell diameter.
        for c in 0..idx.grid().cell_count() as CellId {
            let f_idx = idx.assigned[c as usize].unwrap();
            if (f_idx as usize) < idx.stats().satisfied_cells {
                // Heuristic: functions are pushed in cell order, so
                // directly-satisfied cells reference their own function
                // only if this cell was the one that created it. Instead
                // just verify: looked-up function for the cell center is
                // within the error bound of the center.
                let center = idx.grid().center(c);
                let f = idx.lookup(&center).unwrap();
                let d = angular_distance(f, &center);
                // Very loose sanity bound: π/2.
                assert!(d <= fairrank_geometry::HALF_PI + 1e-9);
            }
        }
    }

    #[test]
    fn theorem6_error_bound_holds_against_bruteforce() {
        // Compare the index answer against a dense brute-force optimum.
        use fairrank_fairness::FairnessOracle as _;
        let (ds, oracle, idx) = build_small(0.9, 3, 400);
        assert!(idx.is_satisfiable());
        let bound = idx.error_bound();

        // Brute force: dense angle sampling for the true nearest
        // satisfactory function.
        let steps = 60;
        let mut sat_points: Vec<Vec<f64>> = Vec::new();
        for i in 0..steps {
            for j in 0..steps {
                let ang = vec![
                    (i as f64 + 0.5) / steps as f64 * fairrank_geometry::HALF_PI,
                    (j as f64 + 0.5) / steps as f64 * fairrank_geometry::HALF_PI,
                ];
                if oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, &ang))) {
                    sat_points.push(ang);
                }
            }
        }
        assert!(!sat_points.is_empty());

        let queries = [[0.2, 0.3], [1.2, 0.4], [0.8, 1.4], [0.05, 0.05]];
        for q in queries {
            let opt = sat_points
                .iter()
                .map(|p| angular_distance(p, &q))
                .fold(f64::INFINITY, f64::min);
            let got = idx.lookup(&q).unwrap();
            let app = angular_distance(got, &q);
            // Discretized "optimum" itself has ~1 grid-step slack; allow it.
            let slack = 0.08;
            assert!(
                app <= opt + bound + slack,
                "query {q:?}: approx {app} > optimum {opt} + bound {bound}"
            );
        }
    }

    #[test]
    fn stats_phases_populated() {
        let (_, _, idx) = build_small(0.5, 4, 100);
        let s = idx.stats();
        assert!(s.hyperplane_count > 0);
        assert_eq!(s.hc_histogram.len(), s.cell_count);
        assert!(s.oracle_calls > 0);
        assert!(s.total_time() >= s.markcell_time);
    }

    #[test]
    fn uniform_scheme_builds() {
        let ds = generic::uniform(15, 3, 0.5, 8);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 4).with_max_count(0, 2);
        let idx = ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells: 100,
                scheme: PartitionScheme::Uniform,
                max_hyperplanes: Some(40),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(idx.grid().cell_count() >= 81);
    }

    #[test]
    fn weights_roundtrip_through_polar() {
        // lookup expects angle vectors; make sure conversion from weights
        // composes (the ranker's path).
        let (_, _, idx) = build_small(0.8, 4, 120);
        let w = [0.5, 0.3, 0.8];
        let (_, angles) = to_polar(&w);
        assert!(idx.lookup(&angles).is_some());
    }
}
