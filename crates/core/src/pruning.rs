//! Top-k candidate pruning (paper §8, future work).
//!
//! When the fairness oracle provably inspects only the top-k prefix of the
//! ranking, items that cannot reach the top-k under *any* non-negative
//! linear function are irrelevant: their ordering exchanges can be dropped
//! before the arrangement is built, shrinking the hyperplane count from
//! `O(n²)` to `O(n_k²)`.
//!
//! The sound candidate set is the first `k` *layers*:
//!
//! * in 2-D, convex (onion) layers — the paper's proposal, exact;
//! * in higher dimensions, dominance (skyline) layers — a superset of the
//!   convex layers (if `t` sits in dominance layer `m`, a chain of `m − 1`
//!   distinct dominators outranks it under every monotone linear function,
//!   so `t` cannot crack the top-k for `m > k`).

use fairrank_datasets::Dataset;
use fairrank_geometry::layers::{convex_layers_2d, dominance_layers, top_k_candidates};

/// Indices of the items that can appear in the top-`k` under some
/// non-negative linear scoring function.
#[must_use]
pub fn top_k_candidate_items(ds: &Dataset, k: usize) -> Vec<usize> {
    let items: Vec<Vec<f64>> = (0..ds.len()).map(|i| ds.row(i)).collect();
    let layers = if ds.dim() == 2 {
        convex_layers_2d(&items)
    } else {
        dominance_layers(&items)
    };
    top_k_candidates(&layers, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;

    #[test]
    fn candidates_cover_every_topk() {
        // Correlated data has long dominance chains, so the first k layers
        // are thin and pruning bites; uniform/anti-correlated data packs
        // most items into a few wide layers and legitimately keeps nearly
        // everything (those items genuinely can reach the top-k).
        let ds = generic::correlated(120, 3, 0.8, 0.0, 31);
        let k = 6;
        let keep = top_k_candidate_items(&ds, k);
        assert!(keep.len() < ds.len(), "pruning should shrink the set");
        // Probe a fan of weight vectors: the top-k must always be within
        // the candidate set.
        for step in 0..25 {
            let a = 0.05 + 0.9 * (step as f64 / 24.0);
            let w = [a, 1.0 - a, 0.5];
            for item in ds.top_k(&w, k) {
                assert!(
                    keep.contains(&(item as usize)),
                    "top-{k} item {item} escaped the candidate set for {w:?}"
                );
            }
        }
    }

    #[test]
    fn uniform_data_coverage_holds_even_without_shrinkage() {
        // The complementary case: wide layers, little pruning, but the
        // soundness property (top-k ⊆ candidates) must hold regardless.
        let ds = generic::uniform(120, 3, 0.0, 31);
        let k = 6;
        let keep = top_k_candidate_items(&ds, k);
        for step in 0..25 {
            let a = 0.05 + 0.9 * (step as f64 / 24.0);
            let w = [a, 1.0 - a, 0.5];
            for item in ds.top_k(&w, k) {
                assert!(keep.contains(&(item as usize)));
            }
        }
    }

    #[test]
    fn two_d_uses_convex_layers() {
        let ds = generic::uniform(200, 2, 0.0, 33);
        let keep2 = top_k_candidate_items(&ds, 2);
        for step in 0..50 {
            let t = step as f64 / 49.0 * fairrank_geometry::HALF_PI;
            let w = [t.cos(), t.sin()];
            for item in ds.top_k(&w, 2) {
                assert!(keep2.contains(&(item as usize)));
            }
        }
        // Convex-layer pruning in 2-D is aggressive.
        assert!(keep2.len() * 4 < ds.len(), "{} kept", keep2.len());
    }

    #[test]
    fn k_of_n_keeps_everything() {
        let ds = generic::uniform(20, 2, 0.0, 35);
        let keep = top_k_candidate_items(&ds, 20);
        assert_eq!(keep.len(), 20);
    }
}
