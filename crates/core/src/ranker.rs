//! The top-level query-answering system: build an index offline, answer
//! CLOSEST SATISFACTORY FUNCTION queries online.
//!
//! [`FairRanker`] is a thin serving shell around a pluggable
//! [`IndexBackend`]: [`FairRanker::builder`] runs one of the paper's
//! offline algorithms (chosen by [`Strategy`], including `Auto`
//! selection), [`FairRanker::respond`] / [`respond_batch`] /
//! [`respond_batch_parallel`] answer [`SuggestRequest`]s against the
//! shared backend, and [`FairRanker::save`] / [`load`] hand a complete
//! ranker from an offline process to online replicas.
//!
//! ## Snapshots and copy-on-write updates
//!
//! The ranker's entire serving state — dataset, oracle, backend,
//! version — lives behind one [`Arc`], so [`FairRanker::snapshot`] is a
//! pointer copy: the async serving tier (`fairrank-serve`) takes one
//! snapshot per micro-batch and serves it lock-free. A live
//! [`FairRanker::update`] on an *exclusively owned* ranker maintains the
//! index in place exactly as before; on a ranker with outstanding
//! snapshots it forks the backend ([`IndexBackend::clone_box`]),
//! maintains the fork, and swaps it in — in-flight snapshots keep
//! serving the old index and dataset version untouched.
//!
//! [`respond_batch`]: FairRanker::respond_batch
//! [`respond_batch_parallel`]: FairRanker::respond_batch_parallel
//! [`load`]: FairRanker::load

use std::path::Path;
use std::sync::Arc;

use fairrank_datasets::{Dataset, RankWorkspace};
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::interval::AngularIntervals;

use crate::approximate::{ApproxGrid, ApproxIndex, BuildOptions};
use crate::backend::{Answer, BackendStats, IndexBackend, QueryCtx, Strategy};
use crate::error::{validate_weights, FairRankError};
use crate::md::{sat_regions, ExactRegions, SatRegionsOptions};
use crate::persist::{decode_ranker_versioned, encode_ranker_versioned, PersistError};
use crate::request::{KnownFairness, SuggestRequest, SuggestStats, Suggestion};
use crate::twod::TwoDIntervals;
use crate::update::{DatasetUpdate, UpdateCtx, UpdateOutcome};

/// The shared serving state: everything a query consults, in one
/// allocation so snapshots are a pointer copy and updates can swap the
/// whole generation atomically.
struct RankerCore {
    ds: Arc<Dataset>,
    oracle: Arc<dyn FairnessOracle>,
    backend: Box<dyn IndexBackend>,
    /// Number of dataset updates applied since construction (or carried
    /// over from a persisted envelope) — the dataset's serving epoch.
    version: u64,
}

/// Micro-batch threshold for the inline fast path of
/// [`FairRanker::respond_batch_parallel`]: batches at or below this size
/// whose requested shard count exceeds the batch run inline (each shard
/// would hold ≤ 1 request, so thread-spawn overhead dominates any
/// parallel win at this scale). Larger under-filled batches clamp the
/// shard count to the batch size and still parallelize.
pub const PARALLEL_INLINE_MAX: usize = 16;

/// The query-answering system of the paper: offline preprocessing behind
/// an interactive suggestion API.
///
/// The ranker holds its dataset, oracle and index behind one shared
/// [`Arc`], so it is `Send + Sync`, [`FairRanker::snapshot`] is a
/// pointer copy, and
/// [`respond_batch_parallel`](FairRanker::respond_batch_parallel) fans
/// shards out over one instance.
pub struct FairRanker {
    core: Arc<RankerCore>,
}

/// Configures and runs the offline phase — the single entry point behind
/// which all three paper algorithms live. Created by
/// [`FairRanker::builder`].
pub struct FairRankerBuilder {
    ds: Arc<Dataset>,
    oracle: Box<dyn FairnessOracle>,
    strategy: Strategy,
    sat_opts: SatRegionsOptions,
    approx_opts: BuildOptions,
    exact_rebuild_every: usize,
    build_threads: Option<usize>,
    lazy_regions: bool,
}

impl FairRankerBuilder {
    /// Which offline algorithm to run. Default: [`Strategy::Auto`].
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Options for the exact multi-dimensional build (used when the
    /// resolved strategy is [`Strategy::MdExact`]).
    #[must_use]
    pub fn sat_regions_options(mut self, opts: SatRegionsOptions) -> Self {
        self.sat_opts = opts;
        self
    }

    /// How many live updates the exact-regions backend coalesces before
    /// paying one arrangement reconstruction (default 1 = rebuild
    /// immediately, so answers never go stale). Only affects
    /// [`Strategy::MdExact`]; see
    /// [`ExactRegions::with_update_policy`].
    #[must_use]
    pub fn exact_rebuild_every(mut self, every: usize) -> Self {
        self.exact_rebuild_every = every.max(1);
        self
    }

    /// Options for the approximate grid build (used when the resolved
    /// strategy is [`Strategy::MdApprox`]).
    #[must_use]
    pub fn approx_options(mut self, opts: BuildOptions) -> Self {
        self.approx_opts = opts;
        self
    }

    /// Worker count for the offline build, whichever backend the
    /// strategy resolves to (`0` = all available cores). Every parallel
    /// build is bit-identical to the serial one — the knob changes
    /// wall-clock only, never the index (gated by
    /// `tests/build_equivalence.rs`). When not set, the
    /// [`crate::parallel::BUILD_THREADS_ENV`] environment variable
    /// applies, else builds run serially (except the approximate grid,
    /// whose cell probing has always defaulted to all cores).
    #[must_use]
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.build_threads = Some(threads);
        self
    }

    /// Defer the exact arrangement: [`Strategy::MdExact`] construction
    /// returns immediately and the full [`sat_regions`] pass runs — at
    /// most once, memoized — on the first query that needs it. Answers
    /// are bit-identical to an eager build;
    /// [`IndexBackend::region_of`] refuses to certify region identity
    /// until materialization has happened (see
    /// [`ExactRegions::new_lazy`]). Ignored by the other strategies.
    #[must_use]
    pub fn lazy_regions(mut self, lazy: bool) -> Self {
        self.lazy_regions = lazy;
        self
    }

    /// Run the offline phase and assemble the ranker.
    ///
    /// # Errors
    /// [`FairRankError::DimensionMismatch`] when [`Strategy::TwoD`] is
    /// requested over a non-2-D dataset;
    /// [`FairRankError::TooFewAttributes`] for single-attribute
    /// datasets.
    pub fn build(self) -> Result<FairRanker, FairRankError> {
        let FairRankerBuilder {
            ds,
            oracle,
            strategy,
            mut sat_opts,
            mut approx_opts,
            exact_rebuild_every,
            build_threads,
            lazy_regions,
        } = self;
        let picked = strategy.pick(&ds);
        let build_timer = crate::buildtel::BuildTimer::start(match picked {
            Strategy::TwoD => "twod",
            Strategy::MdExact => "md_exact",
            Strategy::MdApprox => "md_approx",
            _ => "other",
        });
        let backend: Box<dyn IndexBackend> = match picked {
            Strategy::TwoD => {
                // `build_maintained_threads` keeps the sweep structure so
                // live updates maintain the index incrementally.
                Box::new(TwoDIntervals::build_maintained_threads(
                    &ds,
                    oracle.as_ref(),
                    build_threads,
                )?)
            }
            Strategy::MdExact => {
                sat_opts.threads = sat_opts.threads.or(build_threads);
                if lazy_regions {
                    if ds.dim() < 2 {
                        // The same validation an eager `sat_regions` run
                        // performs — fail at build time, not at first query.
                        return Err(FairRankError::TooFewAttributes);
                    }
                    Box::new(ExactRegions::new_lazy(
                        ds.dim() - 1,
                        sat_opts,
                        exact_rebuild_every,
                    ))
                } else {
                    let regions = sat_regions(&ds, oracle.as_ref(), &sat_opts)?;
                    Box::new(
                        ExactRegions::new(regions.satisfactory, regions.dim)
                            .with_update_policy(sat_opts, exact_rebuild_every),
                    )
                }
            }
            Strategy::MdApprox => {
                // The approximate grid's cell probing has always defaulted
                // to all cores (`None`); only an explicit builder request
                // overrides it.
                if approx_opts.threads.is_none() {
                    if let Some(t) = build_threads {
                        approx_opts.threads = Some(crate::parallel::resolve_build_threads(Some(t)));
                    }
                }
                Box::new(ApproxGrid::new(ApproxIndex::build(
                    &ds,
                    oracle.as_ref(),
                    &approx_opts,
                )?))
            }
            // `pick` resolves Auto (and any future variant added behind
            // the non_exhaustive attribute must teach `pick` its rule).
            other => unreachable!("Strategy::pick returned unresolved {other:?}"),
        };
        build_timer.finish();
        FairRanker::from_backend_arc(ds, oracle, backend, 0)
    }
}

impl std::fmt::Debug for FairRanker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairRanker")
            .field("items", &self.core.ds.len())
            .field("dim", &self.core.ds.dim())
            .field("version", &self.core.version)
            .field("oracle", &self.core.oracle.describe())
            .field("backend", &self.core.backend.stats())
            .finish()
    }
}

impl FairRanker {
    /// Start configuring a ranker over `ds` (anything convertible to
    /// `Arc<Dataset>`: a `Dataset` by value, or an existing `Arc` —
    /// shared without copying the data).
    #[must_use]
    pub fn builder(
        ds: impl Into<Arc<Dataset>>,
        oracle: Box<dyn FairnessOracle>,
    ) -> FairRankerBuilder {
        FairRankerBuilder {
            ds: ds.into(),
            oracle,
            strategy: Strategy::Auto,
            sat_opts: SatRegionsOptions::default(),
            approx_opts: BuildOptions::default(),
            exact_rebuild_every: 1,
            build_threads: None,
            lazy_regions: false,
        }
    }

    /// Assemble a ranker from an already-built (or third-party) backend.
    ///
    /// This is the extension point the [`IndexBackend`] trait exists
    /// for: any index structure answering closest-satisfactory-function
    /// queries serves through the same `FairRanker` API as the built-in
    /// three.
    ///
    /// # Errors
    /// [`FairRankError::DimensionMismatch`] when the backend's expected
    /// weight dimensionality differs from the dataset's.
    pub fn from_backend(
        ds: impl Into<Arc<Dataset>>,
        oracle: Box<dyn FairnessOracle>,
        backend: Box<dyn IndexBackend>,
    ) -> Result<Self, FairRankError> {
        Self::from_backend_arc(ds.into(), oracle, backend, 0)
    }

    fn from_backend_arc(
        ds: Arc<Dataset>,
        oracle: Box<dyn FairnessOracle>,
        backend: Box<dyn IndexBackend>,
        version: u64,
    ) -> Result<Self, FairRankError> {
        if backend.dim() != ds.dim() {
            return Err(FairRankError::DimensionMismatch {
                expected: backend.dim(),
                found: ds.dim(),
            });
        }
        Ok(FairRanker {
            core: Arc::new(RankerCore {
                ds,
                oracle: Arc::from(oracle),
                backend,
                version,
            }),
        })
    }

    /// A cheap shared handle onto this ranker's current serving state —
    /// a pointer copy, no index duplication.
    ///
    /// Snapshots serve concurrently and independently: a later
    /// [`FairRanker::update`] on the original (or any other handle)
    /// copy-on-writes a *new* generation, so every outstanding snapshot
    /// keeps answering from the dataset version it captured — the
    /// foundation of the async serving tier's update-while-serving
    /// guarantee.
    #[must_use]
    pub fn snapshot(&self) -> FairRanker {
        FairRanker {
            core: Arc::clone(&self.core),
        }
    }

    /// The dataset the index was built over.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.core.ds
    }

    /// The serving backend.
    #[must_use]
    pub fn backend(&self) -> &dyn IndexBackend {
        self.core.backend.as_ref()
    }

    /// Backend-agnostic index statistics. The update/rebuild counters
    /// are read in one consistent pass and aggregate across
    /// copy-on-write generations (see
    /// [`SharedCounters`](crate::backend::SharedCounters)).
    #[must_use]
    pub fn backend_stats(&self) -> BackendStats {
        self.core.backend.stats()
    }

    /// Answer one [`SuggestRequest`]: is the query fair, and if not,
    /// what is the closest satisfactory function?
    ///
    /// Matching the paper's algorithms (2DONLINE line 8, MDBASELINE
    /// line 1, MDONLINE line 1), the oracle is first consulted on the
    /// query itself; only unfair queries hit the index. The response
    /// carries the weights to serve with, the verdict, the dataset
    /// [`version`](FairRanker::version) it reflects, and — when
    /// [`SuggestRequest::k`] is set — the top-k ranking under the
    /// answered weights.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` on
    /// malformed input.
    pub fn respond(&self, req: &SuggestRequest) -> Result<Suggestion, FairRankError> {
        validate_weights(&req.query, self.core.ds.dim())?;
        let mut ws = RankWorkspace::new();
        if self
            .core
            .oracle
            .is_satisfactory(&self.core.ds.rank(&req.query))
        {
            return Ok(self.finish(req, Answer::AlreadyFair, false, &mut ws));
        }
        let answer = self.core.backend.suggest_unfair(&req.query, &self.ctx())?;
        Ok(self.finish(req, answer, false, &mut ws))
    }

    /// Answer one request with the oracle's fairness verdict supplied by
    /// the caller, skipping the `O(n log n)` rank-and-ask pass — the
    /// serve-tier answer cache's hit path.
    ///
    /// `fair` must be the verdict the oracle *would* reach for
    /// `req.query` on this snapshot; the caller certifies this through
    /// [`IndexBackend::region_of`] identity with a previously answered
    /// query at the same [`version`](FairRanker::version). Everything
    /// query-dependent — suggested weights, distance, echoed query,
    /// top-k ranking — is still computed here through the same
    /// [`IndexBackend::suggest_unfair`]/`finish` code the uncached
    /// [`FairRanker::respond`] path runs, so a hit is bit-identical to a
    /// miss by construction.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` on
    /// malformed input; backend failures as [`FairRanker::respond`].
    pub fn respond_with_verdict(
        &self,
        req: &SuggestRequest,
        fair: bool,
    ) -> Result<Suggestion, FairRankError> {
        validate_weights(&req.query, self.core.ds.dim())?;
        let mut ws = RankWorkspace::new();
        if fair {
            return Ok(self.finish(req, Answer::AlreadyFair, false, &mut ws));
        }
        let answer = self.core.backend.suggest_unfair(&req.query, &self.ctx())?;
        Ok(self.finish(req, answer, false, &mut ws))
    }

    /// The backend's region identity for `weights`, when it can certify
    /// one — the convenience forwarding of
    /// [`IndexBackend::region_of`]. Returns `None` for malformed
    /// weights as well as for backends (or queries) without a certified
    /// region, so cache layers can call it unconditionally.
    #[must_use]
    pub fn region_of(&self, weights: &[f64]) -> Option<crate::backend::RegionKey> {
        if validate_weights(weights, self.core.ds.dim()).is_err() {
            return None;
        }
        self.core.backend.region_of(weights)
    }

    /// Answer a batch of requests at once — the multi-query entry point
    /// online serving (and the micro-batch executor of the async
    /// `FairRankService`) drains into.
    ///
    /// Element-wise identical to calling [`FairRanker::respond`] per
    /// request (property-tested), but amortized: the query rankings for
    /// the paper's "is it already fair?" check (2DONLINE line 8 /
    /// MDBASELINE line 1 / MDONLINE line 1) run through one reused
    /// [`fairrank_datasets::RankWorkspace`] — partial top-k sorts when
    /// the oracle exposes a bound, zero allocations on the steady
    /// path — and the oracle sees them through its batched entry point,
    /// so per-call setup is paid once per chunk instead of once per
    /// query. Only queries whose ranking the oracle rejects proceed to
    /// the index.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` if *any*
    /// request is malformed (checked upfront; no partial answers).
    pub fn respond_batch(&self, reqs: &[SuggestRequest]) -> Result<Vec<Suggestion>, FairRankError> {
        for req in reqs {
            validate_weights(&req.query, self.core.ds.dim())?;
        }
        let verdicts = crate::probes::batch_verdicts_by(
            &self.core.ds,
            self.core.oracle.as_ref(),
            reqs.len(),
            |i, out| out.extend_from_slice(&reqs[i].query),
        );
        let mut ws = RankWorkspace::new();
        reqs.iter()
            .zip(verdicts)
            .map(|(req, fair)| {
                if fair {
                    Ok(self.finish(req, Answer::AlreadyFair, false, &mut ws))
                } else {
                    let answer = self.core.backend.suggest_unfair(&req.query, &self.ctx())?;
                    Ok(self.finish(req, answer, false, &mut ws))
                }
            })
            .collect()
    }

    /// The sharded serving entry point: split `reqs` into up to `shards`
    /// contiguous chunks and answer them on [`std::thread::scope`]
    /// workers, each with its own
    /// [`fairrank_datasets::RankWorkspace`]. Answers are element-wise
    /// identical to [`FairRanker::respond`] (property-tested) and come
    /// back in request order.
    ///
    /// Two effects make this the high-throughput path:
    ///
    /// * **Index-decided fairness.** When the backend characterizes the
    ///   satisfactory set exactly
    ///   ([`IndexBackend::known_fairness`] — the 2-D intervals do), each
    ///   worker answers the "is it already fair?" check in `O(log n)`
    ///   from the index instead of ranking all `n` items for the
    ///   oracle — a large constant-factor win per query even on one
    ///   core. Requests that opt out
    ///   ([`SuggestOptions::index_fastpath`](crate::SuggestOptions::index_fastpath)
    ///   = `false`) and backends that cannot decide fairness (the
    ///   approximate grid, the `d > 3` exact regions) fall back to the
    ///   same batched oracle pass [`FairRanker::respond_batch`] uses,
    ///   per shard.
    /// * **Parallelism.** Shards run concurrently, so on a multi-core
    ///   serving host throughput scales with cores on top of the
    ///   index-decided win.
    ///
    /// `shards == 0` uses [`std::thread::available_parallelism`]. One
    /// shard — or a micro-batch (≤ [`PARALLEL_INLINE_MAX`] requests)
    /// smaller than the shard count, the shape micro-batching services
    /// produce constantly — runs inline without touching
    /// [`std::thread::scope`] at all, so small batches pay zero spawn
    /// overhead; larger batches that under-fill the requested shard
    /// count clamp the shard count to the batch size and parallelize.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` if *any*
    /// request is malformed (checked upfront; no partial answers).
    pub fn respond_batch_parallel(
        &self,
        reqs: &[SuggestRequest],
        shards: usize,
    ) -> Result<Vec<Suggestion>, FairRankError> {
        for req in reqs {
            validate_weights(&req.query, self.core.ds.dim())?;
        }
        let shards = match shards {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            s => s,
        };
        // Inline fast path: one shard, or a *micro-batch* smaller than
        // the shard count (each shard would hold ≤ 1 request — all spawn
        // overhead, no parallel win at that size; micro-batch callers
        // wiring this entry point pay zero thread spawns). Mid-size
        // batches that merely under-fill the requested shard count still
        // parallelize: the shard count clamps to the batch size instead,
        // because for expensive oracle-bound queries one thread per
        // request beats running them serially.
        if shards <= 1
            || reqs.len() <= 1
            || (reqs.len() < shards && reqs.len() <= PARALLEL_INLINE_MAX)
        {
            return self.serve_shard(reqs);
        }
        let shards = shards.min(reqs.len());
        let chunk_len = reqs.len().div_ceil(shards);
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = reqs
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || self.serve_shard(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving shard panicked"))
                .collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(reqs.len());
        for shard in results {
            out.extend(shard?);
        }
        Ok(out)
    }

    /// One shard's worth of serving: answer index-decidable requests
    /// straight from the backend, batch the rest through one
    /// workspace-backed oracle pass (the shard's private
    /// [`fairrank_datasets::RankWorkspace`] lives inside
    /// [`crate::probes::batch_verdicts_by`]).
    fn serve_shard(&self, reqs: &[SuggestRequest]) -> Result<Vec<Suggestion>, FairRankError> {
        let ctx = self.ctx();
        let mut ws = RankWorkspace::new();
        let mut out: Vec<Option<Suggestion>> = vec![None; reqs.len()];
        let mut oracle_needed: Vec<usize> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let index_verdict = if req.options.index_fastpath {
                self.core.backend.known_fairness(&req.query)
            } else {
                None
            };
            out[i] = match index_verdict {
                Some(true) => Some(self.finish(req, Answer::AlreadyFair, true, &mut ws)),
                Some(false) => {
                    let answer = self.core.backend.suggest_unfair(&req.query, &ctx)?;
                    Some(self.finish(req, answer, true, &mut ws))
                }
                None => {
                    oracle_needed.push(i);
                    None
                }
            };
        }
        if !oracle_needed.is_empty() {
            let verdicts = crate::probes::batch_verdicts_by(
                &self.core.ds,
                self.core.oracle.as_ref(),
                oracle_needed.len(),
                |j, buf| buf.extend_from_slice(&reqs[oracle_needed[j]].query),
            );
            for (&i, fair) in oracle_needed.iter().zip(verdicts) {
                out[i] = Some(if fair {
                    self.finish(&reqs[i], Answer::AlreadyFair, false, &mut ws)
                } else {
                    let answer = self.core.backend.suggest_unfair(&reqs[i].query, &ctx)?;
                    self.finish(&reqs[i], answer, false, &mut ws)
                });
            }
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every request answered"))
            .collect())
    }

    /// Assemble the response envelope for one answered request: hoist
    /// the served weights, stamp the dataset version, and materialize
    /// the top-k ranking when asked — through the caller's reused
    /// [`RankWorkspace`], so a batch of top-k requests allocates once.
    fn finish(
        &self,
        req: &SuggestRequest,
        answer: Answer,
        index_decided: bool,
        ws: &mut RankWorkspace,
    ) -> Suggestion {
        let (weights, fairness) = match answer {
            Answer::AlreadyFair => (req.query.clone(), KnownFairness::AlreadyFair),
            Answer::Suggested { weights, distance } => {
                (weights, KnownFairness::Suggested { distance })
            }
            Answer::Infeasible => (req.query.clone(), KnownFairness::Infeasible),
        };
        let top_k = req.k.map(|k| {
            // Partial top-k (`select_nth_unstable` + prefix sort) rather
            // than a full O(n log n) ranking: identical prefix to
            // `Dataset::rank` (property-tested in batch_equivalence).
            let mut ranking = ws
                .rank_with_bound(&self.core.ds, &weights, Some(k))
                .to_vec();
            ranking.truncate(k);
            ranking
        });
        Suggestion {
            weights,
            version: self.core.version,
            fairness,
            stats: SuggestStats {
                index_decided,
                top_k,
            },
        }
    }

    /// The ranker's dataset epoch: how many live updates have been
    /// applied (carried through [`FairRanker::save`]/[`load`](FairRanker::load)
    /// in the persistence envelope, so replicas can tell which snapshot
    /// a handed-off index reflects). Every [`Suggestion`] stamps the
    /// version it was answered from.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.core.version
    }

    /// Apply one live dataset update — the serving-time mutation front
    /// door. The shared state is *versioned*, not mutated in place under
    /// readers: on an exclusively owned ranker the index is maintained
    /// in place (incrementally where the backend supports it); on a
    /// ranker with outstanding [`snapshot`](FairRanker::snapshot)s the
    /// backend is forked ([`IndexBackend::clone_box`]), the fork is
    /// maintained, and a new generation is swapped in — every snapshot
    /// handed out earlier (replicas, in-flight micro-batches) keeps
    /// serving its old copy-on-write `Arc<Dataset>` generation
    /// untouched while the version advances. The oracle is re-bound to
    /// the new dataset ([`FairnessOracle::rebind`]).
    ///
    /// After the update (once any [`UpdateOutcome::Deferred`] window is
    /// flushed), [`FairRanker::respond`] answers exactly as a ranker
    /// rebuilt from scratch on the updated dataset would — the
    /// equivalence is property-tested per backend.
    ///
    /// # Errors
    /// [`FairRankError::InvalidUpdate`] on a malformed update (nothing is
    /// changed); [`FairRankError::UpdateUnsupported`] when a third-party
    /// backend has no update surface; [`FairRankError::CloneUnsupported`]
    /// when snapshots are outstanding and the backend cannot fork;
    /// backend rebuild errors.
    pub fn update(&mut self, update: DatasetUpdate) -> Result<UpdateOutcome, FairRankError> {
        update.validate(&self.core.ds)?;
        let old = Arc::clone(&self.core.ds);
        let mut next = (*old).clone();
        update
            .apply_to(&mut next)
            .map_err(|e| FairRankError::InvalidUpdate(e.to_string()))?;
        let next = Arc::new(next);
        // Stage the rebound oracle; dataset, oracle and version commit
        // together only after the backend accepted the update.
        let rebound = self.core.oracle.rebind(&next);
        if Arc::get_mut(&mut self.core).is_none() {
            return self.update_forked(&update, &old, next, rebound);
        }
        let core = Arc::get_mut(&mut self.core).expect("checked exclusive above");
        let outcome = {
            let ctx = UpdateCtx {
                old: &old,
                ds: &next,
                oracle: rebound.as_deref().unwrap_or(core.oracle.as_ref()),
            };
            core.backend.apply(&update, &ctx)?
        };
        core.ds = next;
        if let Some(oracle) = rebound {
            core.oracle = Arc::from(oracle);
        }
        core.version += 1;
        Ok(outcome)
    }

    /// The copy-on-write half of [`FairRanker::update`]: snapshots share
    /// the current core, so maintain a backend fork and swap in a fresh
    /// generation. On any error the current generation is untouched.
    fn update_forked(
        &mut self,
        update: &DatasetUpdate,
        old: &Arc<Dataset>,
        next: Arc<Dataset>,
        rebound: Option<Box<dyn FairnessOracle>>,
    ) -> Result<UpdateOutcome, FairRankError> {
        let mut backend = self.core.backend.clone_box().ok_or_else(|| {
            FairRankError::CloneUnsupported(self.core.backend.stats().kind.to_string())
        })?;
        let oracle: Arc<dyn FairnessOracle> = match rebound {
            Some(o) => Arc::from(o),
            None => Arc::clone(&self.core.oracle),
        };
        let outcome = {
            let ctx = UpdateCtx {
                old,
                ds: &next,
                oracle: oracle.as_ref(),
            };
            backend.apply(update, &ctx)?
        };
        self.core = Arc::new(RankerCore {
            ds: next,
            oracle,
            backend,
            version: self.core.version + 1,
        });
        Ok(outcome)
    }

    /// Apply a sequence of updates in order, returning one
    /// [`UpdateOutcome`] per update. Stops at (and returns) the first
    /// error; updates before it have been applied.
    ///
    /// # Errors
    /// As [`FairRanker::update`].
    pub fn update_batch(
        &mut self,
        updates: impl IntoIterator<Item = DatasetUpdate>,
    ) -> Result<Vec<UpdateOutcome>, FairRankError> {
        updates.into_iter().map(|u| self.update(u)).collect()
    }

    /// Force any updates a coalescing backend deferred
    /// ([`UpdateOutcome::Deferred`]) to take effect now. Backends without
    /// a deferral buffer return [`UpdateOutcome::Noop`]. Like
    /// [`FairRanker::update`], this copy-on-writes a fresh generation
    /// when snapshots are outstanding.
    ///
    /// # Errors
    /// Backend rebuild errors; [`FairRankError::CloneUnsupported`] when
    /// snapshots are outstanding and the backend cannot fork.
    pub fn flush_updates(&mut self) -> Result<UpdateOutcome, FairRankError> {
        if Arc::get_mut(&mut self.core).is_none() {
            // Probe before forking: a flush with nothing buffered is a
            // Noop, and deep-copying the whole index just to discover
            // that would make every idle flush on a shared ranker (the
            // service's slot is always shared) pay a full index clone.
            if !self.core.backend.has_pending_updates() {
                return Ok(UpdateOutcome::Noop);
            }
            let mut backend = self.core.backend.clone_box().ok_or_else(|| {
                FairRankError::CloneUnsupported(self.core.backend.stats().kind.to_string())
            })?;
            let outcome = {
                let ctx = UpdateCtx {
                    old: &self.core.ds,
                    ds: &self.core.ds,
                    oracle: self.core.oracle.as_ref(),
                };
                backend.flush(&ctx)?
            };
            if outcome != UpdateOutcome::Noop {
                self.core = Arc::new(RankerCore {
                    ds: Arc::clone(&self.core.ds),
                    oracle: Arc::clone(&self.core.oracle),
                    backend,
                    version: self.core.version,
                });
            }
            return Ok(outcome);
        }
        let core = Arc::get_mut(&mut self.core).expect("checked exclusive above");
        let ctx = UpdateCtx {
            old: &core.ds,
            ds: &core.ds,
            oracle: core.oracle.as_ref(),
        };
        core.backend.flush(&ctx)
    }

    /// Serialize the complete ranker index — backend tag plus artifact
    /// plus the update counter, inside one checksummed envelope — for
    /// the offline→online hand-off. The inverse is
    /// [`FairRanker::from_bytes`].
    ///
    /// Deferred updates are **not** part of the envelope: a coalescing
    /// backend (exact regions behind
    /// [`exact_rebuild_every`](FairRankerBuilder::exact_rebuild_every))
    /// serializes its current — possibly stale — index and the loaded
    /// replica has no pending buffer left to flush. Call
    /// [`FairRanker::flush_updates`] before serializing a ranker that
    /// may sit inside a deferral window.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        // A lazily built exact backend that has never been queried holds
        // no arrangement yet; persisting one would silently encode an
        // empty region list. Materialize first — idempotent, and exactly
        // the pass the first query would have paid.
        if let Some(exact) = self.core.backend.as_any().downcast_ref::<ExactRegions>() {
            exact.materialize(&self.core.ds, self.core.oracle.as_ref());
        }
        encode_ranker_versioned(
            self.core.ds.dim(),
            self.core.version,
            self.core.backend.as_ref(),
        )
    }

    /// Reassemble a ranker persisted with [`FairRanker::to_bytes`],
    /// dispatching on the stored backend tag. The online replica supplies
    /// the dataset and oracle (they are needed for the fairness
    /// pre-check and for exact-backend answer validation); the expensive
    /// index is what travels as bytes.
    ///
    /// # Errors
    /// [`FairRankError::Persist`] on corrupted, truncated or
    /// unknown-backend input; [`FairRankError::DimensionMismatch`] when
    /// the saved index was built over a dataset of different
    /// dimensionality.
    pub fn from_bytes(
        bytes: &[u8],
        ds: impl Into<Arc<Dataset>>,
        oracle: Box<dyn FairnessOracle>,
    ) -> Result<Self, FairRankError> {
        let ds = ds.into();
        let (dim, version, backend) = decode_ranker_versioned(bytes)?;
        if dim != ds.dim() {
            return Err(FairRankError::DimensionMismatch {
                expected: dim,
                found: ds.dim(),
            });
        }
        Self::from_backend_arc(ds, oracle, backend, version)
    }

    /// Write [`FairRanker::to_bytes`] to a file.
    ///
    /// # Errors
    /// [`FairRankError::Persist`] wrapping the I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), FairRankError> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| PersistError::Io(e.to_string()).into())
    }

    /// Read a file written by [`FairRanker::save`] and reassemble the
    /// ranker — see [`FairRanker::from_bytes`].
    ///
    /// # Errors
    /// [`FairRankError::Persist`] on I/O or decoding failures;
    /// [`FairRankError::DimensionMismatch`] on a dataset of the wrong
    /// dimensionality.
    pub fn load(
        path: impl AsRef<Path>,
        ds: impl Into<Arc<Dataset>>,
        oracle: Box<dyn FairnessOracle>,
    ) -> Result<Self, FairRankError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| PersistError::Io(e.to_string()))?;
        Self::from_bytes(&bytes, ds, oracle)
    }

    /// Direct access to the 2-D satisfactory intervals (when the backend
    /// is [`TwoDIntervals`]).
    #[must_use]
    pub fn intervals(&self) -> Option<&AngularIntervals> {
        self.core
            .backend
            .as_any()
            .downcast_ref::<TwoDIntervals>()
            .map(TwoDIntervals::intervals)
    }

    /// Direct access to the approximate index (when the backend is
    /// [`ApproxGrid`]).
    #[must_use]
    pub fn approx_index(&self) -> Option<&ApproxIndex> {
        self.core
            .backend
            .as_any()
            .downcast_ref::<ApproxGrid>()
            .map(ApproxGrid::index)
    }

    fn ctx(&self) -> QueryCtx<'_> {
        QueryCtx {
            ds: &self.core.ds,
            oracle: self.core.oracle.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::{FnOracle, Proportionality};

    fn biased_2d() -> (Dataset, Proportionality) {
        let ds = generic::uniform(50, 2, 0.95, 404);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 10).with_max_count(0, 5);
        (ds, oracle)
    }

    fn build_2d(ds: &Dataset, oracle: Box<dyn FairnessOracle>) -> FairRanker {
        FairRanker::builder(ds.clone(), oracle)
            .strategy(Strategy::TwoD)
            .build()
            .unwrap()
    }

    fn req(weights: &[f64]) -> SuggestRequest {
        SuggestRequest::new(weights)
    }

    #[test]
    fn ranker_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FairRanker>();
    }

    #[test]
    fn two_d_end_to_end() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle.clone()));
        // A strongly attribute-0-weighted query should be unfair (group 0
        // is concentrated at the top of that ranking)…
        let sug = ranker.respond(&req(&[1.0, 0.02])).unwrap();
        match sug.fairness {
            KnownFairness::Suggested { distance } => {
                use fairrank_fairness::FairnessOracle as _;
                assert!(distance > 0.0);
                assert!(
                    oracle.is_satisfactory(&ds.rank(&sug.weights)),
                    "suggested weights must be fair"
                );
                // Norm preserved.
                let r: f64 = sug.weights.iter().map(|w| w * w).sum::<f64>().sqrt();
                assert!((r - (1.0f64 + 0.02 * 0.02).sqrt()).abs() < 1e-9);
            }
            other => panic!("expected a suggestion, got {other:?}"),
        }
        assert_eq!(sug.version, 0);
        assert!(!sug.stats.index_decided, "respond() is the oracle path");
    }

    #[test]
    fn respond_batch_variants_agree_elementwise() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        let queries = [[1.0, 0.02], [0.3, 1.7], [1.0, 1.0]];
        let reqs: Vec<SuggestRequest> = queries.iter().map(|q| req(q)).collect();
        let batch = ranker.respond_batch(&reqs).unwrap();
        let parallel = ranker.respond_batch_parallel(&reqs, 2).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let single = ranker.respond(&req(q)).unwrap();
            assert_eq!(batch[i], single, "batch diverges on query {i}");
            // The sharded path may decide fairness from the index alone
            // (stats.index_decided), so compare the served answer.
            assert_eq!(
                (
                    &parallel[i].weights,
                    &parallel[i].fairness,
                    parallel[i].version
                ),
                (&single.weights, &single.fairness, single.version),
                "parallel batch diverges on query {i}"
            );
        }
    }

    #[test]
    fn already_fair_short_circuits() {
        let ds = generic::uniform(30, 2, 0.0, 5);
        let o = FnOracle::new("always", |_: &[u32]| true);
        let ranker = build_2d(&ds, Box::new(o));
        let sug = ranker.respond(&req(&[1.0, 1.0])).unwrap();
        assert_eq!(sug.fairness, KnownFairness::AlreadyFair);
        assert_eq!(sug.weights, vec![1.0, 1.0], "fair queries echo the query");
    }

    #[test]
    fn infeasible_propagates() {
        let ds = generic::uniform(30, 2, 0.0, 6);
        let o = FnOracle::new("never", |_: &[u32]| false);
        let ranker = build_2d(&ds, Box::new(o));
        let sug = ranker.respond(&req(&[1.0, 1.0])).unwrap();
        assert!(sug.is_infeasible());
        assert_eq!(sug.weights, vec![1.0, 1.0], "infeasible echoes the query");
    }

    #[test]
    fn top_k_materialization_matches_direct_ranking() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        let sug = ranker.respond(&req(&[1.0, 0.02]).with_top_k(5)).unwrap();
        let top = sug.stats.top_k.as_deref().expect("k requested");
        assert_eq!(top.len(), 5);
        assert_eq!(top, &ds.rank(&sug.weights)[..5]);
        // k larger than n clamps to the full ranking; no k → no list.
        let all = ranker.respond(&req(&[1.0, 0.02]).with_top_k(999)).unwrap();
        assert_eq!(all.stats.top_k.unwrap().len(), ds.len());
        assert!(ranker
            .respond(&req(&[1.0, 0.02]))
            .unwrap()
            .stats
            .top_k
            .is_none());
    }

    #[test]
    fn md_exact_end_to_end() {
        let ds = generic::uniform(25, 3, 0.9, 41);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
            .strategy(Strategy::MdExact)
            .sat_regions_options(SatRegionsOptions {
                max_hyperplanes: Some(60),
                ..Default::default()
            })
            .build()
            .unwrap();
        let sug = ranker.respond(&req(&[1.0, 0.05, 0.05])).unwrap();
        if let KnownFairness::Suggested { .. } = &sug.fairness {
            use fairrank_fairness::FairnessOracle as _;
            assert!(
                oracle.is_satisfactory(&ds.rank(&sug.weights)),
                "exact suggestion must be fair"
            );
        }
    }

    #[test]
    fn md_approx_end_to_end() {
        let ds = generic::uniform(30, 3, 0.9, 43);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
            .strategy(Strategy::MdApprox)
            .approx_options(BuildOptions {
                n_cells: 200,
                max_hyperplanes: Some(100),
                ..Default::default()
            })
            .build()
            .unwrap();
        let sug = ranker.respond(&req(&[1.0, 0.02, 0.02])).unwrap();
        match sug.fairness {
            KnownFairness::Suggested { .. } => {
                use fairrank_fairness::FairnessOracle as _;
                assert!(
                    oracle.is_satisfactory(&ds.rank(&sug.weights)),
                    "approx suggestion must be fair (functions are validated)"
                );
            }
            KnownFairness::AlreadyFair => {} // possible if the query is fair
            KnownFairness::Infeasible => panic!("satisfiable setup reported infeasible"),
        }
    }

    #[test]
    fn auto_strategy_picks_2d_backend() {
        let (ds, oracle) = biased_2d();
        let ranker = FairRanker::builder(ds, Box::new(oracle)).build().unwrap();
        assert_eq!(ranker.backend_stats().kind, "2d-intervals");
        assert!(ranker.intervals().is_some());
    }

    #[test]
    fn respond_batch_matches_serial_2d() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        let reqs: Vec<SuggestRequest> = (0..80)
            .map(|i| {
                let t = (i as f64 + 0.5) / 80.0 * fairrank_geometry::HALF_PI;
                SuggestRequest::new(vec![2.0 * t.cos(), 2.0 * t.sin()])
            })
            .collect();
        let batch = ranker.respond_batch(&reqs).unwrap();
        assert_eq!(batch.len(), reqs.len());
        for (r, b) in reqs.iter().zip(&batch) {
            assert_eq!(*b, ranker.respond(r).unwrap(), "mismatch at {r:?}");
        }
    }

    #[test]
    fn respond_batch_parallel_matches_serial_2d() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        let reqs: Vec<SuggestRequest> = (0..33)
            .map(|i| {
                let t = (i as f64 + 0.5) / 33.0 * fairrank_geometry::HALF_PI;
                SuggestRequest::new(vec![2.0 * t.cos(), 2.0 * t.sin()])
            })
            .collect();
        for shards in [0, 1, 2, 4, 33, 100] {
            let parallel = ranker.respond_batch_parallel(&reqs, shards).unwrap();
            assert_eq!(parallel.len(), reqs.len());
            for (r, p) in reqs.iter().zip(&parallel) {
                // The parallel path may decide fairness from the index
                // (`index_decided` differs); the answers must agree.
                let serial = ranker.respond(r).unwrap();
                assert_eq!(p.weights, serial.weights, "shards={shards} at {r:?}");
                assert_eq!(p.fairness, serial.fairness, "shards={shards} at {r:?}");
            }
        }
    }

    #[test]
    fn fastpath_opt_out_forces_oracle() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        let no_fastpath: Vec<SuggestRequest> = (0..12)
            .map(|i| {
                let t = (i as f64 + 0.5) / 12.0 * fairrank_geometry::HALF_PI;
                SuggestRequest::new(vec![2.0 * t.cos(), 2.0 * t.sin()]).with_options(
                    crate::request::SuggestOptions {
                        index_fastpath: false,
                    },
                )
            })
            .collect();
        let answers = ranker.respond_batch_parallel(&no_fastpath, 3).unwrap();
        for (r, a) in no_fastpath.iter().zip(&answers) {
            assert!(!a.stats.index_decided, "opt-out must use the oracle");
            assert_eq!(*a, ranker.respond(r).unwrap());
        }
    }

    #[test]
    fn respond_batch_empty_and_invalid() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        assert_eq!(ranker.respond_batch(&[]).unwrap(), vec![]);
        assert_eq!(ranker.respond_batch_parallel(&[], 4).unwrap(), vec![]);
        let bad = vec![req(&[1.0, 1.0]), req(&[-1.0, 1.0])];
        assert!(ranker.respond_batch(&bad).is_err());
        assert!(ranker.respond_batch_parallel(&bad, 4).is_err());
    }

    #[test]
    fn invalid_queries_rejected() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        assert!(ranker.respond(&req(&[1.0])).is_err());
        assert!(ranker.respond(&req(&[-1.0, 1.0])).is_err());
        assert!(ranker.respond(&req(&[0.0, 0.0])).is_err());
        assert!(ranker.respond(&req(&[f64::INFINITY, 1.0])).is_err());
    }

    #[test]
    fn accessors() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        assert!(ranker.intervals().is_some());
        assert!(ranker.approx_index().is_none());
        assert_eq!(ranker.dataset().len(), 50);
        assert_eq!(ranker.backend().dim(), 2);
    }

    #[test]
    fn from_backend_rejects_dimension_mismatch() {
        let ds3 = generic::uniform(10, 3, 0.0, 9);
        let backend = Box::new(TwoDIntervals::new(
            fairrank_geometry::interval::AngularIntervals::new(),
        ));
        let o = FnOracle::new("always", |_: &[u32]| true);
        assert!(matches!(
            FairRanker::from_backend(ds3, Box::new(o), backend),
            Err(FairRankError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn arc_dataset_is_shared_not_cloned() {
        let (ds, oracle) = biased_2d();
        let shared = Arc::new(ds);
        let ranker = FairRanker::builder(Arc::clone(&shared), Box::new(oracle))
            .build()
            .unwrap();
        assert!(std::ptr::eq(ranker.dataset(), shared.as_ref()));
    }

    #[test]
    fn snapshot_is_a_pointer_copy() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        let snap = ranker.snapshot();
        assert!(std::ptr::eq(ranker.dataset(), snap.dataset()));
        assert_eq!(ranker.version(), snap.version());
    }

    #[test]
    fn update_on_shared_ranker_preserves_snapshots() {
        let (ds, oracle) = biased_2d();
        let mut ranker = build_2d(&ds, Box::new(oracle));
        let snap = ranker.snapshot();
        let q = req(&[1.0, 0.02]);
        let before = snap.respond(&q).unwrap();
        ranker
            .update(DatasetUpdate::Insert {
                scores: vec![0.9, 0.9],
                groups: vec![0],
            })
            .unwrap();
        // The updated ranker advanced; the snapshot is frozen at v0 with
        // its original dataset and bit-identical answers.
        assert_eq!(ranker.version(), 1);
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.dataset().len(), 50);
        assert_eq!(ranker.dataset().len(), 51);
        assert_eq!(snap.respond(&q).unwrap(), before);
        assert_eq!(ranker.respond(&q).unwrap().version, 1);
    }

    #[test]
    fn forked_update_matches_exclusive_update() {
        let (ds, oracle) = biased_2d();
        let updates = vec![
            DatasetUpdate::Insert {
                scores: vec![0.4, 0.8],
                groups: vec![1],
            },
            DatasetUpdate::Rescore {
                item: 3,
                scores: vec![0.7, 0.1],
            },
            DatasetUpdate::Remove { item: 11 },
        ];
        let mut exclusive = build_2d(&ds, Box::new(oracle.clone()));
        let mut shared = build_2d(&ds, Box::new(oracle));
        let _pins: Vec<FairRanker> = (0..3).map(|_| shared.snapshot()).collect();
        for u in updates {
            exclusive.update(u.clone()).unwrap();
            shared.update(u).unwrap();
        }
        for i in 0..20 {
            let t = (i as f64 + 0.5) / 20.0 * fairrank_geometry::HALF_PI;
            let q = req(&[1.4 * t.cos(), 1.4 * t.sin()]);
            assert_eq!(exclusive.respond(&q).unwrap(), shared.respond(&q).unwrap());
        }
        assert_eq!(exclusive.version(), shared.version());
    }

    #[test]
    fn shared_counters_aggregate_across_forks() {
        let (ds, oracle) = biased_2d();
        let mut ranker = build_2d(&ds, Box::new(oracle));
        let snap = ranker.snapshot();
        for i in 0..3 {
            ranker
                .update(DatasetUpdate::Rescore {
                    item: i,
                    scores: vec![0.5, 0.5],
                })
                .unwrap();
        }
        // The counters are shared across copy-on-write generations: both
        // the live ranker and the frozen snapshot report the same totals.
        assert_eq!(ranker.backend_stats().updates, 3);
        assert_eq!(snap.backend_stats().updates, 3);
    }
}
