//! The top-level query-answering system: build an index offline, answer
//! CLOSEST SATISFACTORY FUNCTION queries online.
//!
//! [`FairRanker`] is a thin serving shell around a pluggable
//! [`IndexBackend`]: [`FairRanker::builder`] runs one of the paper's
//! offline algorithms (chosen by [`Strategy`], including `Auto`
//! selection), [`FairRanker::suggest`] / [`suggest_batch`] /
//! [`suggest_batch_parallel`] answer queries against the shared backend,
//! and [`FairRanker::save`] / [`load`] hand a complete ranker from an
//! offline process to online replicas.
//!
//! [`suggest_batch`]: FairRanker::suggest_batch
//! [`suggest_batch_parallel`]: FairRanker::suggest_batch_parallel
//! [`load`]: FairRanker::load

use std::path::Path;
use std::sync::Arc;

use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::interval::AngularIntervals;

use crate::approximate::{ApproxGrid, ApproxIndex, BuildOptions};
use crate::backend::{BackendStats, IndexBackend, QueryCtx, Strategy};
use crate::error::{validate_weights, FairRankError};
use crate::md::{sat_regions, ExactRegions, SatRegionsOptions};
use crate::persist::{decode_ranker_versioned, encode_ranker_versioned, PersistError};
use crate::twod::TwoDIntervals;
use crate::update::{DatasetUpdate, UpdateCtx, UpdateOutcome};

pub use crate::backend::Suggestion;

/// The query-answering system of the paper: offline preprocessing behind
/// an interactive suggestion API.
///
/// The ranker holds the dataset behind an [`Arc`] and the index behind a
/// `Box<dyn IndexBackend>`, so it is `Send + Sync` and cheap to share
/// across serving threads —
/// [`suggest_batch_parallel`](FairRanker::suggest_batch_parallel) fans
/// shards out over one instance.
pub struct FairRanker {
    ds: Arc<Dataset>,
    oracle: Box<dyn FairnessOracle>,
    backend: Box<dyn IndexBackend>,
    /// Number of dataset updates applied since construction (or carried
    /// over from a persisted envelope) — the dataset's serving epoch.
    version: u64,
}

/// Configures and runs the offline phase — the single entry point behind
/// which all three paper algorithms live. Created by
/// [`FairRanker::builder`].
pub struct FairRankerBuilder {
    ds: Arc<Dataset>,
    oracle: Box<dyn FairnessOracle>,
    strategy: Strategy,
    sat_opts: SatRegionsOptions,
    approx_opts: BuildOptions,
    exact_rebuild_every: usize,
}

impl FairRankerBuilder {
    /// Which offline algorithm to run. Default: [`Strategy::Auto`].
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Options for the exact multi-dimensional build (used when the
    /// resolved strategy is [`Strategy::MdExact`]).
    #[must_use]
    pub fn sat_regions_options(mut self, opts: SatRegionsOptions) -> Self {
        self.sat_opts = opts;
        self
    }

    /// How many live updates the exact-regions backend coalesces before
    /// paying one arrangement reconstruction (default 1 = rebuild
    /// immediately, so answers never go stale). Only affects
    /// [`Strategy::MdExact`]; see
    /// [`ExactRegions::with_update_policy`].
    #[must_use]
    pub fn exact_rebuild_every(mut self, every: usize) -> Self {
        self.exact_rebuild_every = every.max(1);
        self
    }

    /// Options for the approximate grid build (used when the resolved
    /// strategy is [`Strategy::MdApprox`]).
    #[must_use]
    pub fn approx_options(mut self, opts: BuildOptions) -> Self {
        self.approx_opts = opts;
        self
    }

    /// Run the offline phase and assemble the ranker.
    ///
    /// # Errors
    /// [`FairRankError::DimensionMismatch`] when [`Strategy::TwoD`] is
    /// requested over a non-2-D dataset;
    /// [`FairRankError::TooFewAttributes`] for single-attribute
    /// datasets.
    pub fn build(self) -> Result<FairRanker, FairRankError> {
        let FairRankerBuilder {
            ds,
            oracle,
            strategy,
            sat_opts,
            approx_opts,
            exact_rebuild_every,
        } = self;
        let backend: Box<dyn IndexBackend> = match strategy.pick(&ds) {
            Strategy::TwoD => {
                // `build_maintained` keeps the sweep structure so live
                // updates maintain the index incrementally.
                Box::new(TwoDIntervals::build_maintained(&ds, oracle.as_ref())?)
            }
            Strategy::MdExact => {
                let regions = sat_regions(&ds, oracle.as_ref(), &sat_opts)?;
                Box::new(
                    ExactRegions::new(regions.satisfactory, regions.dim)
                        .with_update_policy(sat_opts, exact_rebuild_every),
                )
            }
            Strategy::MdApprox => Box::new(ApproxGrid::new(ApproxIndex::build(
                &ds,
                oracle.as_ref(),
                &approx_opts,
            )?)),
            // `pick` resolves Auto (and any future variant added behind
            // the non_exhaustive attribute must teach `pick` its rule).
            other => unreachable!("Strategy::pick returned unresolved {other:?}"),
        };
        FairRanker::from_backend_arc(ds, oracle, backend)
    }
}

impl std::fmt::Debug for FairRanker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairRanker")
            .field("items", &self.ds.len())
            .field("dim", &self.ds.dim())
            .field("oracle", &self.oracle.describe())
            .field("backend", &self.backend.stats())
            .finish()
    }
}

impl FairRanker {
    /// Start configuring a ranker over `ds` (anything convertible to
    /// `Arc<Dataset>`: a `Dataset` by value, or an existing `Arc` —
    /// shared without copying the data).
    #[must_use]
    pub fn builder(
        ds: impl Into<Arc<Dataset>>,
        oracle: Box<dyn FairnessOracle>,
    ) -> FairRankerBuilder {
        FairRankerBuilder {
            ds: ds.into(),
            oracle,
            strategy: Strategy::Auto,
            sat_opts: SatRegionsOptions::default(),
            approx_opts: BuildOptions::default(),
            exact_rebuild_every: 1,
        }
    }

    /// Assemble a ranker from an already-built (or third-party) backend.
    ///
    /// This is the extension point the [`IndexBackend`] trait exists
    /// for: any index structure answering closest-satisfactory-function
    /// queries serves through the same `FairRanker` API as the built-in
    /// three.
    ///
    /// # Errors
    /// [`FairRankError::DimensionMismatch`] when the backend's expected
    /// weight dimensionality differs from the dataset's.
    pub fn from_backend(
        ds: impl Into<Arc<Dataset>>,
        oracle: Box<dyn FairnessOracle>,
        backend: Box<dyn IndexBackend>,
    ) -> Result<Self, FairRankError> {
        Self::from_backend_arc(ds.into(), oracle, backend)
    }

    fn from_backend_arc(
        ds: Arc<Dataset>,
        oracle: Box<dyn FairnessOracle>,
        backend: Box<dyn IndexBackend>,
    ) -> Result<Self, FairRankError> {
        if backend.dim() != ds.dim() {
            return Err(FairRankError::DimensionMismatch {
                expected: backend.dim(),
                found: ds.dim(),
            });
        }
        Ok(FairRanker {
            ds,
            oracle,
            backend,
            version: 0,
        })
    }

    /// Offline phase for two scoring attributes: 2DRAYSWEEP (paper §3).
    ///
    /// # Errors
    /// [`FairRankError::DimensionMismatch`] unless `ds.dim() == 2`.
    #[deprecated(
        since = "0.1.0",
        note = "use `FairRanker::builder(ds, oracle).strategy(Strategy::TwoD).build()`"
    )]
    pub fn build_2d(ds: &Dataset, oracle: Box<dyn FairnessOracle>) -> Result<Self, FairRankError> {
        FairRanker::builder(ds.clone(), oracle)
            .strategy(Strategy::TwoD)
            .build()
    }

    /// Offline phase, exact multi-dimensional: SATREGIONS (paper §4).
    ///
    /// # Errors
    /// [`FairRankError::TooFewAttributes`] for `ds.dim() < 2`.
    #[deprecated(
        since = "0.1.0",
        note = "use `FairRanker::builder(ds, oracle).strategy(Strategy::MdExact).build()`"
    )]
    pub fn build_md_exact(
        ds: &Dataset,
        oracle: Box<dyn FairnessOracle>,
        opts: &SatRegionsOptions,
    ) -> Result<Self, FairRankError> {
        FairRanker::builder(ds.clone(), oracle)
            .strategy(Strategy::MdExact)
            .sat_regions_options(opts.clone())
            .build()
    }

    /// Offline phase, approximate multi-dimensional: the §5 grid pipeline
    /// with the Theorem 6 distance guarantee and `O(log N)` queries.
    ///
    /// # Errors
    /// [`FairRankError::TooFewAttributes`] for `ds.dim() < 2`.
    #[deprecated(
        since = "0.1.0",
        note = "use `FairRanker::builder(ds, oracle).strategy(Strategy::MdApprox).build()`"
    )]
    pub fn build_md_approx(
        ds: &Dataset,
        oracle: Box<dyn FairnessOracle>,
        opts: &BuildOptions,
    ) -> Result<Self, FairRankError> {
        FairRanker::builder(ds.clone(), oracle)
            .strategy(Strategy::MdApprox)
            .approx_options(opts.clone())
            .build()
    }

    /// The dataset the index was built over.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// The serving backend.
    #[must_use]
    pub fn backend(&self) -> &dyn IndexBackend {
        self.backend.as_ref()
    }

    /// Backend-agnostic index statistics.
    #[must_use]
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Answer a query: is `weights` fair, and if not, what is the closest
    /// satisfactory function?
    ///
    /// Matching the paper's algorithms (2DONLINE line 8, MDBASELINE
    /// line 1, MDONLINE line 1), the oracle is first consulted on the
    /// query itself; only unfair queries hit the index.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` on
    /// malformed input.
    pub fn suggest(&self, weights: &[f64]) -> Result<Suggestion, FairRankError> {
        validate_weights(weights, self.ds.dim())?;
        if self.oracle.is_satisfactory(&self.ds.rank(weights)) {
            return Ok(Suggestion::AlreadyFair);
        }
        self.backend.suggest_unfair(weights, &self.ctx())
    }

    /// Answer a batch of queries at once — the multi-query entry point
    /// for online serving.
    ///
    /// Element-wise identical to calling [`FairRanker::suggest`] per
    /// query (property-tested), but amortized: the query rankings for the
    /// paper's "is it already fair?" check (2DONLINE line 8 / MDBASELINE
    /// line 1 / MDONLINE line 1) run through one reused
    /// [`fairrank_datasets::RankWorkspace`] — partial top-k sorts when the oracle exposes a
    /// bound, zero allocations on the steady path — and the oracle sees
    /// them through its batched entry point, so per-call setup is paid
    /// once per chunk instead of once per query. Only queries whose
    /// ranking the oracle rejects proceed to the index.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` if *any*
    /// query is malformed (checked upfront; no partial answers).
    pub fn suggest_batch(&self, queries: &[&[f64]]) -> Result<Vec<Suggestion>, FairRankError> {
        for q in queries {
            validate_weights(q, self.ds.dim())?;
        }
        let verdicts = crate::probes::batch_verdicts_by(
            &self.ds,
            self.oracle.as_ref(),
            queries.len(),
            |i, out| out.extend_from_slice(queries[i]),
        );
        queries
            .iter()
            .zip(verdicts)
            .map(|(q, fair)| {
                if fair {
                    Ok(Suggestion::AlreadyFair)
                } else {
                    self.backend.suggest_unfair(q, &self.ctx())
                }
            })
            .collect()
    }

    /// The sharded serving entry point: split `queries` into up to
    /// `shards` contiguous chunks and answer them on
    /// [`std::thread::scope`] workers, each with its own
    /// [`fairrank_datasets::RankWorkspace`]. Answers are element-wise
    /// identical to [`FairRanker::suggest`] (property-tested) and come
    /// back in query order.
    ///
    /// Two effects make this the high-throughput path:
    ///
    /// * **Index-decided fairness.** When the backend characterizes the
    ///   satisfactory set exactly
    ///   ([`IndexBackend::known_fairness`] — the 2-D intervals do), each
    ///   worker answers the "is it already fair?" check in `O(log n)`
    ///   from the index instead of ranking all `n` items for the
    ///   oracle — a large constant-factor win per query even on one
    ///   core. Backends that cannot decide fairness (the approximate
    ///   grid, the `d > 3` exact regions) fall back to the same batched
    ///   oracle pass [`FairRanker::suggest_batch`] uses, per shard.
    /// * **Parallelism.** Shards run concurrently, so on a multi-core
    ///   serving host throughput scales with cores on top of the
    ///   index-decided win.
    ///
    /// `shards == 0` uses [`std::thread::available_parallelism`]; one
    /// shard (or one query) runs inline without spawning.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` if *any*
    /// query is malformed (checked upfront; no partial answers).
    pub fn suggest_batch_parallel(
        &self,
        queries: &[&[f64]],
        shards: usize,
    ) -> Result<Vec<Suggestion>, FairRankError> {
        for q in queries {
            validate_weights(q, self.ds.dim())?;
        }
        let shards = match shards {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            s => s,
        }
        .clamp(1, queries.len().max(1));
        if shards <= 1 || queries.len() <= 1 {
            return self.serve_shard(queries);
        }
        let chunk_len = queries.len().div_ceil(shards);
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || self.serve_shard(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving shard panicked"))
                .collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(queries.len());
        for shard in results {
            out.extend(shard?);
        }
        Ok(out)
    }

    /// One shard's worth of serving: answer index-decidable queries
    /// straight from the backend, batch the rest through one
    /// workspace-backed oracle pass (the shard's private
    /// [`fairrank_datasets::RankWorkspace`] lives inside
    /// [`crate::probes::batch_verdicts_by`]).
    fn serve_shard(&self, queries: &[&[f64]]) -> Result<Vec<Suggestion>, FairRankError> {
        let ctx = self.ctx();
        let mut out: Vec<Option<Suggestion>> = vec![None; queries.len()];
        let mut oracle_needed: Vec<usize> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            out[i] = match self.backend.known_fairness(q) {
                Some(true) => Some(Suggestion::AlreadyFair),
                Some(false) => Some(self.backend.suggest_unfair(q, &ctx)?),
                None => {
                    oracle_needed.push(i);
                    None
                }
            };
        }
        if !oracle_needed.is_empty() {
            let verdicts = crate::probes::batch_verdicts_by(
                &self.ds,
                self.oracle.as_ref(),
                oracle_needed.len(),
                |j, buf| buf.extend_from_slice(queries[oracle_needed[j]]),
            );
            for (&i, fair) in oracle_needed.iter().zip(verdicts) {
                out[i] = Some(if fair {
                    Suggestion::AlreadyFair
                } else {
                    self.backend.suggest_unfair(queries[i], &ctx)?
                });
            }
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every query answered"))
            .collect())
    }

    /// The ranker's dataset epoch: how many live updates have been
    /// applied (carried through [`FairRanker::save`]/[`load`](FairRanker::load)
    /// in the persistence envelope, so replicas can tell which snapshot
    /// a handed-off index reflects).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Apply one live dataset update — the serving-time mutation front
    /// door. The shared [`Arc<Dataset>`] is *versioned*, not mutated:
    /// a fresh copy-on-write snapshot replaces it, so any clone handed
    /// out earlier (replicas, in-flight readers) keeps serving the old
    /// version untouched. The oracle is re-bound to the new dataset
    /// ([`FairnessOracle::rebind`]) and the backend maintains its index
    /// through [`IndexBackend::apply`] — incrementally where the backend
    /// supports it.
    ///
    /// After the update (once any [`UpdateOutcome::Deferred`] window is
    /// flushed), [`FairRanker::suggest`] answers exactly as a ranker
    /// rebuilt from scratch on the updated dataset would — the
    /// equivalence is property-tested per backend.
    ///
    /// # Errors
    /// [`FairRankError::InvalidUpdate`] on a malformed update (nothing is
    /// changed); [`FairRankError::UpdateUnsupported`] when a third-party
    /// backend has no update surface; backend rebuild errors.
    pub fn update(&mut self, update: DatasetUpdate) -> Result<UpdateOutcome, FairRankError> {
        update.validate(&self.ds)?;
        let old = Arc::clone(&self.ds);
        let mut next = (*old).clone();
        update
            .apply_to(&mut next)
            .map_err(|e| FairRankError::InvalidUpdate(e.to_string()))?;
        let next = Arc::new(next);
        // Stage the rebound oracle; dataset, oracle and version commit
        // together only after the backend accepted the update.
        let rebound = self.oracle.rebind(&next);
        let ctx = UpdateCtx {
            old: &old,
            ds: &next,
            oracle: rebound.as_deref().unwrap_or(self.oracle.as_ref()),
        };
        let outcome = self.backend.apply(&update, &ctx)?;
        self.ds = next;
        if let Some(oracle) = rebound {
            self.oracle = oracle;
        }
        self.version += 1;
        Ok(outcome)
    }

    /// Apply a sequence of updates in order, returning one
    /// [`UpdateOutcome`] per update. Stops at (and returns) the first
    /// error; updates before it have been applied.
    ///
    /// # Errors
    /// As [`FairRanker::update`].
    pub fn update_batch(
        &mut self,
        updates: impl IntoIterator<Item = DatasetUpdate>,
    ) -> Result<Vec<UpdateOutcome>, FairRankError> {
        updates.into_iter().map(|u| self.update(u)).collect()
    }

    /// Force any updates a coalescing backend deferred
    /// ([`UpdateOutcome::Deferred`]) to take effect now. Backends without
    /// a deferral buffer return [`UpdateOutcome::Noop`].
    ///
    /// # Errors
    /// Backend rebuild errors.
    pub fn flush_updates(&mut self) -> Result<UpdateOutcome, FairRankError> {
        let ctx = UpdateCtx {
            old: &self.ds,
            ds: &self.ds,
            oracle: self.oracle.as_ref(),
        };
        self.backend.flush(&ctx)
    }

    /// Serialize the complete ranker index — backend tag plus artifact
    /// plus the update counter, inside one checksummed envelope — for
    /// the offline→online hand-off. The inverse is
    /// [`FairRanker::from_bytes`].
    ///
    /// Deferred updates are **not** part of the envelope: a coalescing
    /// backend (exact regions behind
    /// [`exact_rebuild_every`](FairRankerBuilder::exact_rebuild_every))
    /// serializes its current — possibly stale — index and the loaded
    /// replica has no pending buffer left to flush. Call
    /// [`FairRanker::flush_updates`] before serializing a ranker that
    /// may sit inside a deferral window.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_ranker_versioned(self.ds.dim(), self.version, self.backend.as_ref())
    }

    /// Reassemble a ranker persisted with [`FairRanker::to_bytes`],
    /// dispatching on the stored backend tag. The online replica supplies
    /// the dataset and oracle (they are needed for the fairness
    /// pre-check and for exact-backend answer validation); the expensive
    /// index is what travels as bytes.
    ///
    /// # Errors
    /// [`FairRankError::Persist`] on corrupted, truncated or
    /// unknown-backend input; [`FairRankError::DimensionMismatch`] when
    /// the saved index was built over a dataset of different
    /// dimensionality.
    pub fn from_bytes(
        bytes: &[u8],
        ds: impl Into<Arc<Dataset>>,
        oracle: Box<dyn FairnessOracle>,
    ) -> Result<Self, FairRankError> {
        let ds = ds.into();
        let (dim, version, backend) = decode_ranker_versioned(bytes)?;
        if dim != ds.dim() {
            return Err(FairRankError::DimensionMismatch {
                expected: dim,
                found: ds.dim(),
            });
        }
        let mut ranker = Self::from_backend_arc(ds, oracle, backend)?;
        ranker.version = version;
        Ok(ranker)
    }

    /// Write [`FairRanker::to_bytes`] to a file.
    ///
    /// # Errors
    /// [`FairRankError::Persist`] wrapping the I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), FairRankError> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| PersistError::Io(e.to_string()).into())
    }

    /// Read a file written by [`FairRanker::save`] and reassemble the
    /// ranker — see [`FairRanker::from_bytes`].
    ///
    /// # Errors
    /// [`FairRankError::Persist`] on I/O or decoding failures;
    /// [`FairRankError::DimensionMismatch`] on a dataset of the wrong
    /// dimensionality.
    pub fn load(
        path: impl AsRef<Path>,
        ds: impl Into<Arc<Dataset>>,
        oracle: Box<dyn FairnessOracle>,
    ) -> Result<Self, FairRankError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| PersistError::Io(e.to_string()))?;
        Self::from_bytes(&bytes, ds, oracle)
    }

    /// Direct access to the 2-D satisfactory intervals (when the backend
    /// is [`TwoDIntervals`]).
    #[must_use]
    pub fn intervals(&self) -> Option<&AngularIntervals> {
        self.backend
            .as_any()
            .downcast_ref::<TwoDIntervals>()
            .map(TwoDIntervals::intervals)
    }

    /// Direct access to the approximate index (when the backend is
    /// [`ApproxGrid`]).
    #[must_use]
    pub fn approx_index(&self) -> Option<&ApproxIndex> {
        self.backend
            .as_any()
            .downcast_ref::<ApproxGrid>()
            .map(ApproxGrid::index)
    }

    fn ctx(&self) -> QueryCtx<'_> {
        QueryCtx {
            ds: &self.ds,
            oracle: self.oracle.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::{FnOracle, Proportionality};

    fn biased_2d() -> (Dataset, Proportionality) {
        let ds = generic::uniform(50, 2, 0.95, 404);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 10).with_max_count(0, 5);
        (ds, oracle)
    }

    fn build_2d(ds: &Dataset, oracle: Box<dyn FairnessOracle>) -> FairRanker {
        FairRanker::builder(ds.clone(), oracle)
            .strategy(Strategy::TwoD)
            .build()
            .unwrap()
    }

    #[test]
    fn ranker_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FairRanker>();
    }

    #[test]
    fn two_d_end_to_end() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle.clone()));
        // A strongly attribute-0-weighted query should be unfair (group 0
        // is concentrated at the top of that ranking)…
        let sug = ranker.suggest(&[1.0, 0.02]).unwrap();
        match sug {
            Suggestion::Suggested { weights, distance } => {
                use fairrank_fairness::FairnessOracle as _;
                assert!(distance > 0.0);
                assert!(
                    oracle.is_satisfactory(&ds.rank(&weights)),
                    "suggested weights must be fair"
                );
                // Norm preserved.
                let r: f64 = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
                assert!((r - (1.0f64 + 0.02 * 0.02).sqrt()).abs() < 1e-9);
            }
            other => panic!("expected a suggestion, got {other:?}"),
        }
    }

    #[test]
    fn deprecated_constructors_still_work() {
        #![allow(deprecated)]
        let (ds, oracle) = biased_2d();
        let legacy = FairRanker::build_2d(&ds, Box::new(oracle.clone())).unwrap();
        let new = build_2d(&ds, Box::new(oracle));
        for q in [[1.0, 0.02], [0.3, 1.7], [1.0, 1.0]] {
            assert_eq!(legacy.suggest(&q).unwrap(), new.suggest(&q).unwrap());
        }
    }

    #[test]
    fn already_fair_short_circuits() {
        let ds = generic::uniform(30, 2, 0.0, 5);
        let o = FnOracle::new("always", |_: &[u32]| true);
        let ranker = build_2d(&ds, Box::new(o));
        assert_eq!(
            ranker.suggest(&[1.0, 1.0]).unwrap(),
            Suggestion::AlreadyFair
        );
    }

    #[test]
    fn infeasible_propagates() {
        let ds = generic::uniform(30, 2, 0.0, 6);
        let o = FnOracle::new("never", |_: &[u32]| false);
        let ranker = build_2d(&ds, Box::new(o));
        assert_eq!(ranker.suggest(&[1.0, 1.0]).unwrap(), Suggestion::Infeasible);
    }

    #[test]
    fn md_exact_end_to_end() {
        let ds = generic::uniform(25, 3, 0.9, 41);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
            .strategy(Strategy::MdExact)
            .sat_regions_options(SatRegionsOptions {
                max_hyperplanes: Some(60),
                ..Default::default()
            })
            .build()
            .unwrap();
        let sug = ranker.suggest(&[1.0, 0.05, 0.05]).unwrap();
        if let Suggestion::Suggested { weights, .. } = &sug {
            use fairrank_fairness::FairnessOracle as _;
            assert!(
                oracle.is_satisfactory(&ds.rank(weights)),
                "exact suggestion must be fair"
            );
        }
    }

    #[test]
    fn md_approx_end_to_end() {
        let ds = generic::uniform(30, 3, 0.9, 43);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
            .strategy(Strategy::MdApprox)
            .approx_options(BuildOptions {
                n_cells: 200,
                max_hyperplanes: Some(100),
                ..Default::default()
            })
            .build()
            .unwrap();
        let sug = ranker.suggest(&[1.0, 0.02, 0.02]).unwrap();
        match sug {
            Suggestion::Suggested { weights, .. } => {
                use fairrank_fairness::FairnessOracle as _;
                assert!(
                    oracle.is_satisfactory(&ds.rank(&weights)),
                    "approx suggestion must be fair (functions are validated)"
                );
            }
            Suggestion::AlreadyFair => {} // possible if the query is fair
            Suggestion::Infeasible => panic!("satisfiable setup reported infeasible"),
        }
    }

    #[test]
    fn auto_strategy_picks_2d_backend() {
        let (ds, oracle) = biased_2d();
        let ranker = FairRanker::builder(ds, Box::new(oracle)).build().unwrap();
        assert_eq!(ranker.backend_stats().kind, "2d-intervals");
        assert!(ranker.intervals().is_some());
    }

    #[test]
    fn suggest_batch_matches_serial_2d() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        let queries: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let t = (i as f64 + 0.5) / 80.0 * fairrank_geometry::HALF_PI;
                vec![2.0 * t.cos(), 2.0 * t.sin()]
            })
            .collect();
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let batch = ranker.suggest_batch(&refs).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, b) in refs.iter().zip(&batch) {
            assert_eq!(*b, ranker.suggest(q).unwrap(), "mismatch at {q:?}");
        }
    }

    #[test]
    fn suggest_batch_parallel_matches_serial_2d() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        let queries: Vec<Vec<f64>> = (0..33)
            .map(|i| {
                let t = (i as f64 + 0.5) / 33.0 * fairrank_geometry::HALF_PI;
                vec![2.0 * t.cos(), 2.0 * t.sin()]
            })
            .collect();
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        for shards in [0, 1, 2, 4, 33, 100] {
            let parallel = ranker.suggest_batch_parallel(&refs, shards).unwrap();
            assert_eq!(parallel.len(), refs.len());
            for (q, p) in refs.iter().zip(&parallel) {
                assert_eq!(*p, ranker.suggest(q).unwrap(), "shards={shards} at {q:?}");
            }
        }
    }

    #[test]
    fn suggest_batch_matches_serial_md_approx() {
        let ds = generic::uniform(30, 3, 0.9, 43);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let ranker = FairRanker::builder(ds, Box::new(oracle))
            .strategy(Strategy::MdApprox)
            .approx_options(BuildOptions {
                n_cells: 150,
                max_hyperplanes: Some(80),
                ..Default::default()
            })
            .build()
            .unwrap();
        let queries: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![1.0, 0.02 + 0.03 * i as f64, 0.5])
            .collect();
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let batch = ranker.suggest_batch(&refs).unwrap();
        for (q, b) in refs.iter().zip(&batch) {
            assert_eq!(*b, ranker.suggest(q).unwrap());
        }
        let parallel = ranker.suggest_batch_parallel(&refs, 3).unwrap();
        assert_eq!(parallel, batch);
    }

    #[test]
    fn suggest_batch_empty_and_invalid() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        assert_eq!(ranker.suggest_batch(&[]).unwrap(), vec![]);
        assert_eq!(ranker.suggest_batch_parallel(&[], 4).unwrap(), vec![]);
        let bad: Vec<&[f64]> = vec![&[1.0, 1.0], &[-1.0, 1.0]];
        assert!(ranker.suggest_batch(&bad).is_err());
        assert!(ranker.suggest_batch_parallel(&bad, 4).is_err());
    }

    #[test]
    fn invalid_queries_rejected() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        assert!(ranker.suggest(&[1.0]).is_err());
        assert!(ranker.suggest(&[-1.0, 1.0]).is_err());
        assert!(ranker.suggest(&[0.0, 0.0]).is_err());
        assert!(ranker.suggest(&[f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn accessors() {
        let (ds, oracle) = biased_2d();
        let ranker = build_2d(&ds, Box::new(oracle));
        assert!(ranker.intervals().is_some());
        assert!(ranker.approx_index().is_none());
        assert_eq!(ranker.dataset().len(), 50);
        assert_eq!(ranker.backend().dim(), 2);
    }

    #[test]
    fn from_backend_rejects_dimension_mismatch() {
        let ds3 = generic::uniform(10, 3, 0.0, 9);
        let backend = Box::new(TwoDIntervals::new(
            fairrank_geometry::interval::AngularIntervals::new(),
        ));
        let o = FnOracle::new("always", |_: &[u32]| true);
        assert!(matches!(
            FairRanker::from_backend(ds3, Box::new(o), backend),
            Err(FairRankError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn arc_dataset_is_shared_not_cloned() {
        let (ds, oracle) = biased_2d();
        let shared = Arc::new(ds);
        let ranker = FairRanker::builder(Arc::clone(&shared), Box::new(oracle))
            .build()
            .unwrap();
        assert!(std::ptr::eq(ranker.dataset(), shared.as_ref()));
    }
}
