//! The top-level query-answering system: build an index offline, answer
//! CLOSEST SATISFACTORY FUNCTION queries online.

use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::interval::AngularIntervals;
use fairrank_geometry::polar::{to_cartesian, to_polar};
use fairrank_geometry::vector::norm;

use crate::approximate::{ApproxIndex, BuildOptions};
use crate::error::{validate_weights, FairRankError};
use crate::md::{closest_satisfactory_validated, sat_regions, SatRegion, SatRegionsOptions};
use crate::twod::{online_2d, ray_sweep, TwoDAnswer};

/// Answer to a closest-satisfactory-function query.
#[derive(Debug, Clone, PartialEq)]
pub enum Suggestion {
    /// The queried weights already produce a fair ranking.
    AlreadyFair,
    /// The closest satisfactory function found by the index.
    Suggested {
        /// Suggested weight vector (same Euclidean norm as the query, so
        /// only the *direction* — the ranking — changes).
        weights: Vec<f64>,
        /// Angular distance from the query, in radians (`[0, π/2]`).
        distance: f64,
    },
    /// No linear scoring function satisfies the oracle on this dataset.
    Infeasible,
}

enum Index {
    TwoD(AngularIntervals),
    MdExact(Vec<SatRegion>),
    // Boxed: an ApproxIndex (grid + assignments) is far larger than the
    // other variants, and one pointer chase per query is noise next to
    // the grid lookup itself.
    MdApprox(Box<ApproxIndex>),
}

/// The query-answering system of the paper: offline preprocessing behind
/// an interactive suggestion API.
pub struct FairRanker {
    ds: Dataset,
    oracle: Box<dyn FairnessOracle>,
    index: Index,
}

impl FairRanker {
    /// Offline phase for two scoring attributes: 2DRAYSWEEP (paper §3).
    ///
    /// # Errors
    /// [`FairRankError::DimensionMismatch`] unless `ds.dim() == 2`.
    pub fn build_2d(ds: &Dataset, oracle: Box<dyn FairnessOracle>) -> Result<Self, FairRankError> {
        let sweep = ray_sweep(ds, oracle.as_ref())?;
        Ok(FairRanker {
            ds: ds.clone(),
            oracle,
            index: Index::TwoD(sweep.intervals),
        })
    }

    /// Offline phase, exact multi-dimensional: SATREGIONS (paper §4).
    /// Queries run MDBASELINE per satisfactory region — accurate but not
    /// interactive for large inputs; prefer [`FairRanker::build_md_approx`].
    ///
    /// # Errors
    /// [`FairRankError::TooFewAttributes`] for `ds.dim() < 2`.
    pub fn build_md_exact(
        ds: &Dataset,
        oracle: Box<dyn FairnessOracle>,
        opts: &SatRegionsOptions,
    ) -> Result<Self, FairRankError> {
        let regions = sat_regions(ds, oracle.as_ref(), opts)?;
        Ok(FairRanker {
            ds: ds.clone(),
            oracle,
            index: Index::MdExact(regions.satisfactory),
        })
    }

    /// Offline phase, approximate multi-dimensional: the §5 grid pipeline
    /// with the Theorem 6 distance guarantee and `O(log N)` queries.
    ///
    /// # Errors
    /// [`FairRankError::TooFewAttributes`] for `ds.dim() < 2`.
    pub fn build_md_approx(
        ds: &Dataset,
        oracle: Box<dyn FairnessOracle>,
        opts: &BuildOptions,
    ) -> Result<Self, FairRankError> {
        let index = ApproxIndex::build(ds, oracle.as_ref(), opts)?;
        Ok(FairRanker {
            ds: ds.clone(),
            oracle,
            index: Index::MdApprox(Box::new(index)),
        })
    }

    /// The dataset the index was built over.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// Answer a query: is `weights` fair, and if not, what is the closest
    /// satisfactory function?
    ///
    /// Matching the paper's algorithms (2DONLINE line 8, MDBASELINE
    /// line 1, MDONLINE line 1), the oracle is first consulted on the
    /// query itself; only unfair queries hit the index.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` on
    /// malformed input.
    pub fn suggest(&self, weights: &[f64]) -> Result<Suggestion, FairRankError> {
        validate_weights(weights, self.ds.dim())?;
        if self.oracle.is_satisfactory(&self.ds.rank(weights)) {
            return Ok(Suggestion::AlreadyFair);
        }
        self.suggest_unfair(weights)
    }

    /// Answer a batch of queries at once — the multi-query entry point
    /// for online serving.
    ///
    /// Element-wise identical to calling [`FairRanker::suggest`] per
    /// query (property-tested), but amortized: the query rankings for the
    /// paper's "is it already fair?" check (2DONLINE line 8 / MDBASELINE
    /// line 1 / MDONLINE line 1) run through one reused
    /// [`fairrank_datasets::RankWorkspace`] — partial top-k sorts when the oracle exposes a
    /// bound, zero allocations on the steady path — and the oracle sees
    /// them through its batched entry point, so per-call setup is paid
    /// once per chunk instead of once per query. Only queries whose
    /// ranking the oracle rejects proceed to the index.
    ///
    /// # Errors
    /// [`FairRankError::InvalidWeights`] / `DimensionMismatch` if *any*
    /// query is malformed (checked upfront; no partial answers).
    pub fn suggest_batch(&self, queries: &[&[f64]]) -> Result<Vec<Suggestion>, FairRankError> {
        for q in queries {
            validate_weights(q, self.ds.dim())?;
        }
        let verdicts = crate::probes::batch_verdicts_by(
            &self.ds,
            self.oracle.as_ref(),
            queries.len(),
            |i, out| out.extend_from_slice(queries[i]),
        );
        queries
            .iter()
            .zip(verdicts)
            .map(|(q, fair)| {
                if fair {
                    Ok(Suggestion::AlreadyFair)
                } else {
                    self.suggest_unfair(q)
                }
            })
            .collect()
    }

    /// The index half of a query, shared by [`FairRanker::suggest`] and
    /// [`FairRanker::suggest_batch`] so both paths produce identical
    /// answers for unfair queries.
    fn suggest_unfair(&self, weights: &[f64]) -> Result<Suggestion, FairRankError> {
        let r = norm(weights);
        match &self.index {
            Index::TwoD(intervals) => Ok(match online_2d(intervals, weights)? {
                TwoDAnswer::AlreadyFair => Suggestion::AlreadyFair,
                TwoDAnswer::Infeasible => Suggestion::Infeasible,
                TwoDAnswer::Suggestion { weights, distance } => Suggestion::Suggested {
                    weights: weights.to_vec(),
                    distance,
                },
            }),
            Index::MdExact(regions) => {
                let (_, query_angles) = to_polar(weights);
                match closest_satisfactory_validated(
                    regions,
                    &query_angles,
                    &self.ds,
                    self.oracle.as_ref(),
                ) {
                    None => Ok(Suggestion::Infeasible),
                    Some(res) => Ok(Suggestion::Suggested {
                        weights: scale_to(&to_cartesian(1.0, &res.angles), r),
                        distance: res.distance,
                    }),
                }
            }
            Index::MdApprox(index) => {
                let (_, query_angles) = to_polar(weights);
                match index.lookup(&query_angles) {
                    None => Ok(Suggestion::Infeasible),
                    Some(angles) => {
                        let distance =
                            fairrank_geometry::polar::angular_distance(angles, &query_angles);
                        Ok(Suggestion::Suggested {
                            weights: scale_to(&to_cartesian(1.0, angles), r),
                            distance,
                        })
                    }
                }
            }
        }
    }

    /// Direct access to the 2-D satisfactory intervals (when built with
    /// [`FairRanker::build_2d`]).
    #[must_use]
    pub fn intervals(&self) -> Option<&AngularIntervals> {
        match &self.index {
            Index::TwoD(ivs) => Some(ivs),
            _ => None,
        }
    }

    /// Direct access to the approximate index (when built with
    /// [`FairRanker::build_md_approx`]).
    #[must_use]
    pub fn approx_index(&self) -> Option<&ApproxIndex> {
        match &self.index {
            Index::MdApprox(idx) => Some(idx.as_ref()),
            _ => None,
        }
    }
}

fn scale_to(unit: &[f64], r: f64) -> Vec<f64> {
    unit.iter().map(|v| v * r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::{FnOracle, Proportionality};

    fn biased_2d() -> (Dataset, Proportionality) {
        let ds = generic::uniform(50, 2, 0.95, 404);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 10).with_max_count(0, 5);
        (ds, oracle)
    }

    #[test]
    fn two_d_end_to_end() {
        let (ds, oracle) = biased_2d();
        let ranker = FairRanker::build_2d(&ds, Box::new(oracle.clone())).unwrap();
        // A strongly attribute-0-weighted query should be unfair (group 0
        // is concentrated at the top of that ranking)…
        let sug = ranker.suggest(&[1.0, 0.02]).unwrap();
        match sug {
            Suggestion::Suggested { weights, distance } => {
                use fairrank_fairness::FairnessOracle as _;
                assert!(distance > 0.0);
                assert!(
                    oracle.is_satisfactory(&ds.rank(&weights)),
                    "suggested weights must be fair"
                );
                // Norm preserved.
                let r: f64 = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
                assert!((r - (1.0f64 + 0.02 * 0.02).sqrt()).abs() < 1e-9);
            }
            other => panic!("expected a suggestion, got {other:?}"),
        }
    }

    #[test]
    fn already_fair_short_circuits() {
        let ds = generic::uniform(30, 2, 0.0, 5);
        let o = FnOracle::new("always", |_: &[u32]| true);
        let ranker = FairRanker::build_2d(&ds, Box::new(o)).unwrap();
        assert_eq!(
            ranker.suggest(&[1.0, 1.0]).unwrap(),
            Suggestion::AlreadyFair
        );
    }

    #[test]
    fn infeasible_propagates() {
        let ds = generic::uniform(30, 2, 0.0, 6);
        let o = FnOracle::new("never", |_: &[u32]| false);
        let ranker = FairRanker::build_2d(&ds, Box::new(o)).unwrap();
        assert_eq!(ranker.suggest(&[1.0, 1.0]).unwrap(), Suggestion::Infeasible);
    }

    #[test]
    fn md_exact_end_to_end() {
        let ds = generic::uniform(25, 3, 0.9, 41);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let ranker = FairRanker::build_md_exact(
            &ds,
            Box::new(oracle.clone()),
            &SatRegionsOptions {
                max_hyperplanes: Some(60),
                ..Default::default()
            },
        )
        .unwrap();
        let sug = ranker.suggest(&[1.0, 0.05, 0.05]).unwrap();
        if let Suggestion::Suggested { weights, .. } = &sug {
            use fairrank_fairness::FairnessOracle as _;
            assert!(
                oracle.is_satisfactory(&ds.rank(weights)),
                "exact suggestion must be fair"
            );
        }
    }

    #[test]
    fn md_approx_end_to_end() {
        let ds = generic::uniform(30, 3, 0.9, 43);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let ranker = FairRanker::build_md_approx(
            &ds,
            Box::new(oracle.clone()),
            &BuildOptions {
                n_cells: 200,
                max_hyperplanes: Some(100),
                ..Default::default()
            },
        )
        .unwrap();
        let sug = ranker.suggest(&[1.0, 0.02, 0.02]).unwrap();
        match sug {
            Suggestion::Suggested { weights, .. } => {
                use fairrank_fairness::FairnessOracle as _;
                assert!(
                    oracle.is_satisfactory(&ds.rank(&weights)),
                    "approx suggestion must be fair (functions are validated)"
                );
            }
            Suggestion::AlreadyFair => {} // possible if the query is fair
            Suggestion::Infeasible => panic!("satisfiable setup reported infeasible"),
        }
    }

    #[test]
    fn suggest_batch_matches_serial_2d() {
        let (ds, oracle) = biased_2d();
        let ranker = FairRanker::build_2d(&ds, Box::new(oracle)).unwrap();
        let queries: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let t = (i as f64 + 0.5) / 80.0 * fairrank_geometry::HALF_PI;
                vec![2.0 * t.cos(), 2.0 * t.sin()]
            })
            .collect();
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let batch = ranker.suggest_batch(&refs).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, b) in refs.iter().zip(&batch) {
            assert_eq!(*b, ranker.suggest(q).unwrap(), "mismatch at {q:?}");
        }
    }

    #[test]
    fn suggest_batch_matches_serial_md_approx() {
        let ds = generic::uniform(30, 3, 0.9, 43);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let ranker = FairRanker::build_md_approx(
            &ds,
            Box::new(oracle),
            &BuildOptions {
                n_cells: 150,
                max_hyperplanes: Some(80),
                ..Default::default()
            },
        )
        .unwrap();
        let queries: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![1.0, 0.02 + 0.03 * i as f64, 0.5])
            .collect();
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let batch = ranker.suggest_batch(&refs).unwrap();
        for (q, b) in refs.iter().zip(&batch) {
            assert_eq!(*b, ranker.suggest(q).unwrap());
        }
    }

    #[test]
    fn suggest_batch_empty_and_invalid() {
        let (ds, oracle) = biased_2d();
        let ranker = FairRanker::build_2d(&ds, Box::new(oracle)).unwrap();
        assert_eq!(ranker.suggest_batch(&[]).unwrap(), vec![]);
        let bad: Vec<&[f64]> = vec![&[1.0, 1.0], &[-1.0, 1.0]];
        assert!(ranker.suggest_batch(&bad).is_err());
    }

    #[test]
    fn invalid_queries_rejected() {
        let (ds, oracle) = biased_2d();
        let ranker = FairRanker::build_2d(&ds, Box::new(oracle)).unwrap();
        assert!(ranker.suggest(&[1.0]).is_err());
        assert!(ranker.suggest(&[-1.0, 1.0]).is_err());
        assert!(ranker.suggest(&[0.0, 0.0]).is_err());
        assert!(ranker.suggest(&[f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn accessors() {
        let (ds, oracle) = biased_2d();
        let ranker = FairRanker::build_2d(&ds, Box::new(oracle)).unwrap();
        assert!(ranker.intervals().is_some());
        assert!(ranker.approx_index().is_none());
        assert_eq!(ranker.dataset().len(), 50);
    }
}
