//! Telemetry must be free in the answers — the CI gate for
//! `fairrank-telemetry` as wired through the serving stack:
//!
//! * histogram snapshot merging is associative and commutative, and
//!   quantiles are monotone in `q` (properties the scrape pipeline
//!   relies on when shards and threads are merged in any order);
//! * answers over loopback HTTP are **bit-identical** with stage
//!   timing enabled and disabled — this file runs in both feature
//!   legs (default and `telemetry-off`), so the guarantee covers the
//!   compile-time kill switch too;
//! * `GET /metrics` parses back line by line and its counters agree
//!   with the `/stats` JSON view over the same registry;
//! * a cold-start overload answers 503 with a *deterministic*
//!   `Retry-After: 1` (empty latency histogram, zero EWMA).

use std::sync::Arc;
use std::time::Duration;

use fairrank::geometry::HALF_PI;
use fairrank::{FairRanker, Strategy, SuggestRequest, Suggestion};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::{FairnessOracle, FnOracle, Proportionality};
use fairrank_net::json::{decode_suggestion, Json};
use fairrank_net::{Client, HttpServer, ServerConfig};
use fairrank_serve::FairRankService;
use fairrank_telemetry::HistogramSnapshot;
use proptest::prelude::*;

fn oracle_for(ds: &Dataset) -> Box<dyn FairnessOracle> {
    let attr = ds.type_attribute("group").unwrap();
    let k = (ds.len() / 4).max(4);
    Box::new(Proportionality::new(attr, k).with_max_count(0, (k * 3).div_ceil(5)))
}

fn build_ranker(n: usize, seed: u64) -> FairRanker {
    let ds = generic::uniform(n, 2, 0.9, seed);
    let oracle = oracle_for(&ds);
    FairRanker::builder(ds, oracle)
        .strategy(Strategy::TwoD)
        .build()
        .unwrap()
}

fn fan(count: usize) -> Vec<SuggestRequest> {
    (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
            SuggestRequest::new(vec![0.2 + 1.5 * t.cos(), 0.2 + 0.8 * t.sin()])
        })
        .collect()
}

fn http_suggest(client: &mut Client, req: &SuggestRequest) -> Suggestion {
    let resp = client.suggest(req).expect("http request");
    assert_eq!(
        resp.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&resp.body)
    );
    let text = std::str::from_utf8(&resp.body).expect("utf-8 body");
    decode_suggestion(&Json::parse(text).expect("json body")).expect("suggestion shape")
}

// ---------------------------------------------------------------------
// Histogram snapshot algebra
// ---------------------------------------------------------------------

fn snap_of(values: &[u64]) -> HistogramSnapshot {
    let mut s = HistogramSnapshot::empty();
    for &v in values {
        s.record(v);
    }
    s
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging shard snapshots in any grouping or order yields the same
    /// histogram — what lets the scrape path fold per-thread snapshots
    /// without coordinating a canonical order.
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..=u64::MAX, 0..64),
        b in prop::collection::vec(0u64..=u64::MAX, 0..64),
        c in prop::collection::vec(0u64..=u64::MAX, 0..64),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
        prop_assert_eq!(
            merged(&merged(&sa, &sb), &sc),
            merged(&sa, &merged(&sb, &sc))
        );
        // Merging is counting: totals add exactly.
        prop_assert_eq!(
            merged(&sa, &sb).count(),
            sa.count() + sb.count()
        );
    }

    /// Quantiles are monotone non-decreasing in `q`, and pinned to real
    /// bucket bounds: q=0 and q=1 bracket every recorded value's bucket.
    fn quantiles_monotone_in_q(
        values in prop::collection::vec(0u64..=u64::MAX, 1..128),
        qs in prop::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let s = snap_of(&values);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let results: Vec<f64> = qs.iter().map(|&q| s.quantile(q)).collect();
        for pair in results.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "quantile not monotone: {} > {}", pair[0], pair[1]
            );
        }
        let lo = s.quantile(0.0);
        let hi = s.quantile(1.0);
        let max = *values.iter().max().unwrap();
        prop_assert!(lo <= hi, "q0 {lo} above q1 {hi}");
        prop_assert!(
            hi >= max as f64 * (1.0 - 1.0 / 16.0),
            "q1 {hi} below max sample {max}"
        );
    }
}

// ---------------------------------------------------------------------
// Bit-identity across the telemetry toggle
// ---------------------------------------------------------------------

/// The same ranker served with stage timing on and off answers
/// bit-identically to the direct synchronous path. Run under
/// `--features fairrank-telemetry/telemetry-off` this also proves the
/// compiled-out leg serves the same bytes as the default build did —
/// telemetry never touches the answer path.
#[test]
fn http_answers_identical_with_telemetry_on_and_off() {
    let reqs = fan(24);
    let direct = build_ranker(48, 91)
        .snapshot()
        .respond_batch(&reqs)
        .unwrap();

    for timing in [true, false] {
        let service = Arc::new(
            FairRankService::builder(build_ranker(48, 91))
                .workers(2)
                .telemetry(timing)
                .build(),
        );
        let server = HttpServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for (req, want) in reqs.iter().zip(&direct) {
            let got = http_suggest(&mut client, req);
            assert_eq!(got, *want, "timing={timing} {req:?}");
            for (g, w) in got.weights.iter().zip(&want.weights) {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "timing={timing}: weight bits diverged"
                );
            }
        }
        server.shutdown();
    }
}

// ---------------------------------------------------------------------
// /metrics agrees with /stats
// ---------------------------------------------------------------------

/// Parse Prometheus text exposition line by line into
/// `(series-with-labels, value)` pairs, asserting every line is either
/// a well-formed comment or a well-formed sample.
fn parse_prom(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "unknown comment line: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparseable sample value in line: {line}");
        });
        out.push((series.to_string(), value));
    }
    out
}

fn sample(samples: &[(String, f64)], series: &str) -> Option<f64> {
    samples
        .iter()
        .find(|(name, _)| name == series)
        .map(|(_, v)| *v)
}

/// True if any sample belongs to `family` — matching the bare name, a
/// labeled series, or the `_bucket`/`_sum`/`_count` histogram suffixes.
fn family_present(samples: &[(String, f64)], family: &str) -> bool {
    samples.iter().any(|(name, _)| name.starts_with(family))
}

/// On a quiesced service, `/metrics` and `/stats` are two views over
/// the same registry: every shared counter agrees exactly.
#[test]
fn metrics_endpoint_agrees_with_stats_json() {
    let service = Arc::new(
        FairRankService::builder(build_ranker(40, 92))
            .workers(2)
            .build(),
    );
    let server =
        HttpServer::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Serial round trips quiesce the pipeline between requests; the
    // repeat of the same fan exercises the answer cache for hits.
    let reqs = fan(6);
    for req in reqs.iter().chain(reqs.iter()) {
        let _ = http_suggest(&mut client, req);
    }

    let resp = client.request("GET", "/stats", b"").unwrap();
    assert_eq!(resp.status, 200);
    let stats = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();

    let resp = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(resp.status, 200);
    let text = std::str::from_utf8(&resp.body).expect("metrics body is utf-8");
    let samples = parse_prom(text);
    assert!(!samples.is_empty(), "metrics body rendered no samples");

    let stat = |key: &str| stats.get(key).and_then(Json::as_u64).unwrap() as f64;
    assert_eq!(
        sample(&samples, "fairrank_service_submitted_total"),
        Some(stat("submitted"))
    );
    assert_eq!(
        sample(&samples, "fairrank_service_completed_total"),
        Some(stat("completed"))
    );
    assert_eq!(
        sample(&samples, "fairrank_service_rejected_total"),
        Some(stat("rejected"))
    );
    assert_eq!(sample(&samples, "fairrank_service_in_flight"), Some(0.0));
    assert_eq!(stat("submitted"), 12.0);
    assert_eq!(stat("completed"), 12.0);

    let cache = |key: &str| {
        stats
            .get("cache")
            .and_then(|c| c.get(key))
            .and_then(Json::as_u64)
            .unwrap() as f64
    };
    for (series, key) in [
        ("fairrank_cache_hits_total", "hits"),
        ("fairrank_cache_misses_total", "misses"),
        ("fairrank_cache_insertions_total", "insertions"),
        ("fairrank_cache_evictions_total", "evictions"),
        ("fairrank_cache_entries", "entries"),
    ] {
        assert_eq!(
            sample(&samples, series),
            Some(cache(key)),
            "{series} disagrees with /stats cache.{key}"
        );
    }
    assert!(cache("hits") > 0.0, "repeated fan must hit the cache");

    // HTTP request counters cover the suggest traffic (the /metrics
    // request itself is counted after rendering, so it is absent).
    let suggests = sample(
        &samples,
        "fairrank_http_requests_total{code=\"2xx\",endpoint=\"suggest\"}",
    );
    assert_eq!(suggests, Some(12.0));
    assert!(family_present(
        &samples,
        "fairrank_http_request_duration_us"
    ));

    // Stage-timing families exist exactly when the timing layer is
    // compiled in; counters above exist in both legs.
    assert_eq!(
        family_present(&samples, "fairrank_stage_duration_us"),
        fairrank_telemetry::ENABLED,
        "stage timer presence must track the telemetry-off feature"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Deterministic cold-start Retry-After
// ---------------------------------------------------------------------

/// Before any request has completed, the latency histogram is empty and
/// the EWMA is zero, so an overloaded service's `Retry-After` is the
/// clamp floor — exactly 1 second, deterministically. This pins the
/// p95-based hint's cold-start behavior in both feature legs.
#[test]
fn cold_start_overload_retry_after_is_exactly_one() {
    // A 100 ms oracle guarantees no request completes before the
    // rejections land: 3 concurrent one-shot clients against a
    // 1-worker / 1-slot queue shed at least one request within a few
    // milliseconds of connecting.
    let ds = generic::uniform(12, 2, 0.9, 93);
    let oracle = FnOracle::new("very-slow-top-half", |ranking: &[u32]| {
        std::thread::sleep(Duration::from_millis(100));
        ranking[0].is_multiple_of(2) || ranking[1].is_multiple_of(2)
    });
    let ranker = FairRanker::builder(ds, Box::new(oracle))
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    let service = Arc::new(
        FairRankService::builder(ranker)
            .workers(1)
            .max_batch(1)
            .queue_capacity(1)
            .cache(false)
            .build(),
    );
    let server = HttpServer::bind(
        service,
        "127.0.0.1:0",
        ServerConfig {
            threads: 4,
            submit_timeout: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let outcomes: Vec<(u64, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let req = SuggestRequest::new(vec![1.0, 0.2 + 0.1 * f64::from(i)]);
                    let resp = client.suggest(&req).unwrap();
                    match resp.status {
                        200 => (1u64, Vec::new()),
                        503 => {
                            let retry = resp.retry_after.expect("503 must carry retry-after");
                            (0, vec![retry])
                        }
                        other => panic!("unexpected status {other}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let served: u64 = outcomes.iter().map(|(s, _)| s).sum();
    let retries: Vec<u64> = outcomes.iter().flat_map(|(_, r)| r.clone()).collect();
    assert!(served >= 1, "some requests must get through");
    assert!(
        !retries.is_empty(),
        "3 clients x 100ms oracle x 1-slot queue must shed"
    );
    for retry in retries {
        assert_eq!(
            retry, 1,
            "cold-start Retry-After must be the deterministic clamp floor"
        );
    }
    server.shutdown();
}
