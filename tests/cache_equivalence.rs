//! The region-identity answer cache must be invisible in the answers: a
//! cache-enabled [`FairRankService`] answers **bit-identically** to a
//! cache-disabled one (and to the direct synchronous
//! [`FairRanker::respond_batch`] path) on every backend — including
//! across interleaved live updates and under concurrent
//! update/submitter races. Also the regression gate for version
//! coherence (a cache hit never answers from a superseded generation)
//! and for the cache's operational counters.

use std::collections::HashMap;
use std::time::Duration;

use fairrank::approximate::BuildOptions;
use fairrank::md::SatRegionsOptions;
use fairrank::{DatasetUpdate, FairRanker, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::Proportionality;
use fairrank_geometry::HALF_PI;
use fairrank_serve::FairRankService;

fn oracle_for(ds: &Dataset, kfrac: f64, cap_frac: f64) -> Proportionality {
    let attr = ds.type_attribute("group").unwrap();
    let k = ((ds.len() as f64) * kfrac).round().max(2.0) as usize;
    let cap = ((k as f64) * cap_frac).round().max(1.0) as usize;
    Proportionality::new(attr, k).with_max_count(0, cap)
}

/// A ranker whose backend can certify regions: exact (untruncated)
/// hyperplane lists for both the arrangement and the grid — the builds
/// `IndexBackend::region_of` demands before handing out keys.
fn build_cacheable(ds: &Dataset, strategy: Strategy) -> FairRanker {
    let oracle = oracle_for(ds, 0.25, 0.6);
    FairRanker::builder(ds.clone(), Box::new(oracle))
        .strategy(strategy)
        .sat_regions_options(SatRegionsOptions::default())
        .approx_options(BuildOptions {
            n_cells: 120,
            ..Default::default()
        })
        .build()
        .unwrap()
}

/// Queries spanning the orthant, including axis-aligned boundaries.
fn fan(d: usize, count: usize) -> Vec<SuggestRequest> {
    let mut queries: Vec<Vec<f64>> = (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
            let mut q = vec![0.2 + 0.8 * t.sin(); d];
            q[0] = 0.2 + 1.5 * t.cos();
            q[i % d] += 0.9;
            q
        })
        .collect();
    let mut axis0 = vec![0.0; d];
    axis0[0] = 1.0;
    let mut axis1 = vec![0.0; d];
    axis1[d - 1] = 2.0;
    queries.push(axis0);
    queries.push(axis1);
    queries.into_iter().map(SuggestRequest::new).collect()
}

/// The tentpole gate: serve the same request stream (repeated `passes`
/// times, so the cache actually fires) through a cache-enabled and a
/// cache-disabled service, and demand bit-identical answers from both —
/// and from the direct synchronous path.
fn assert_cached_matches_uncached(ranker: FairRanker, reqs: &[SuggestRequest], passes: usize) {
    let direct = ranker.snapshot().respond_batch(reqs).unwrap();
    let cacheable = {
        let reference = ranker.snapshot();
        reqs.iter()
            .filter(|r| reference.region_of(&r.query).is_some())
            .count()
    };
    let cached = FairRankService::builder(ranker.snapshot())
        .workers(1)
        .max_batch(8)
        .max_delay(Duration::from_micros(100))
        .build();
    let uncached = FairRankService::builder(ranker)
        .workers(1)
        .max_batch(8)
        .max_delay(Duration::from_micros(100))
        .cache(false)
        .build();
    for _ in 0..passes {
        for (req, want) in reqs.iter().zip(&direct) {
            let hot = cached.suggest(req.clone()).unwrap();
            let cold = uncached.suggest(req.clone()).unwrap();
            assert_eq!(&hot, want, "cached service diverged from direct at {req:?}");
            assert_eq!(
                &cold, want,
                "uncached service diverged from direct at {req:?}"
            );
        }
    }
    let stats = cached.stats().cache.expect("cache enabled by default");
    // Single worker: the first pass misses each certified region once,
    // every later pass hits it.
    assert!(
        stats.hits >= (cacheable * (passes - 1)) as u64,
        "expected ≥{} hits over {passes} passes, got {stats:?}",
        cacheable * (passes - 1)
    );
    assert_eq!(
        stats.hits + stats.misses,
        (reqs.len() * passes) as u64,
        "every request must count as a hit or a miss"
    );
    assert!(
        uncached.stats().cache.is_none(),
        "disabled cache must not report stats"
    );
    cached.shutdown();
    uncached.shutdown();
}

#[test]
fn cached_matches_uncached_twod() {
    let ds = generic::uniform(45, 2, 0.9, 171);
    let ranker = build_cacheable(&ds, Strategy::TwoD);
    let reqs = fan(2, 40);
    // The 2-D interval index certifies every query (fair intervals, gap
    // sides, or global infeasibility).
    assert!(reqs.iter().all(|r| ranker.region_of(&r.query).is_some()));
    assert_cached_matches_uncached(ranker, &reqs, 3);
}

#[test]
fn cached_matches_uncached_md_exact() {
    let ds = generic::uniform(16, 3, 0.9, 172);
    let ranker = build_cacheable(&ds, Strategy::MdExact);
    let reqs = fan(3, 18);
    // The arrangement certifies fair-region membership only; make sure
    // the workload exercises at least one certified query.
    assert!(
        reqs.iter().any(|r| ranker.region_of(&r.query).is_some()),
        "fan must land in at least one satisfactory region"
    );
    assert_cached_matches_uncached(ranker, &reqs, 3);
}

#[test]
fn cached_matches_uncached_md_approx() {
    let ds = generic::uniform(30, 3, 0.85, 173);
    let ranker = build_cacheable(&ds, Strategy::MdApprox);
    let reqs = fan(3, 24);
    assert_cached_matches_uncached(ranker, &reqs, 3);
}

/// Truncated builds must refuse to certify regions — the cache then
/// degrades to a 0%-hit pass-through instead of serving unsound keys.
#[test]
fn truncated_builds_fall_back_to_uncached_serving() {
    let ds = generic::uniform(16, 3, 0.9, 174);
    let oracle = oracle_for(&ds, 0.25, 0.6);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .strategy(Strategy::MdExact)
        .sat_regions_options(SatRegionsOptions {
            max_hyperplanes: Some(50),
            ..Default::default()
        })
        .build()
        .unwrap();
    let reqs = fan(3, 12);
    assert!(reqs.iter().all(|r| ranker.region_of(&r.query).is_none()));
    let direct = ranker.snapshot().respond_batch(&reqs).unwrap();
    let service = FairRankService::builder(ranker).workers(1).build();
    for pass in 0..2 {
        for (req, want) in reqs.iter().zip(&direct) {
            assert_eq!(&service.suggest(req.clone()).unwrap(), want, "pass {pass}");
        }
    }
    let stats = service.stats().cache.unwrap();
    assert_eq!(stats.hits, 0, "uncertified queries must never hit");
    assert_eq!(stats.misses, 2 * reqs.len() as u64);
    assert_eq!(stats.entries, 0);
    service.shutdown();
}

/// Interleaved updates: after every generation swap the cached service
/// still answers bit-identically to a direct ranker at the same version,
/// and each swap purges (invalidates) the cache.
#[test]
fn updates_purge_the_cache_and_preserve_equivalence() {
    let ds = generic::uniform(40, 2, 0.9, 181);
    let ranker = build_cacheable(&ds, Strategy::TwoD);
    let service = FairRankService::builder(ranker)
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100))
        .build();
    let reqs = fan(2, 16);
    let updates = vec![
        DatasetUpdate::Insert {
            scores: vec![0.55, 0.8],
            groups: vec![0],
        },
        DatasetUpdate::Rescore {
            item: 5,
            scores: vec![0.3, 0.9],
        },
        DatasetUpdate::Remove { item: 17 },
    ];
    let rounds = updates.len() as u64;
    for (round, update) in updates.into_iter().enumerate() {
        let reference = service.snapshot();
        // Two passes per round: the second one hits the cache seeded by
        // the first — both must match the per-version reference exactly.
        for _ in 0..2 {
            for req in &reqs {
                let got = service.suggest(req.clone()).unwrap();
                assert_eq!(got.version, round as u64);
                assert_eq!(got, reference.respond(req).unwrap());
            }
        }
        service.update(update).unwrap();
    }
    let stats = service.stats().cache.unwrap();
    assert_eq!(
        stats.invalidations, rounds,
        "every generation swap must purge the cache"
    );
    assert!(stats.hits > 0, "repeated passes must hit within a version");
    service.shutdown();
}

/// Version-coherence regression (the satellite-3 race): submitters
/// hammer repeated queries — maximizing cache traffic — while an updater
/// swaps generations. A cache hit must never produce a `Suggestion`
/// whose `version` differs from the generation that served it: every
/// answer must be bit-identical to the reference ranker frozen at the
/// answer's own version.
#[test]
fn concurrent_updates_never_serve_stale_cached_verdicts() {
    let ds = generic::uniform(35, 2, 0.9, 183);
    let ranker = build_cacheable(&ds, Strategy::TwoD);
    let service = FairRankService::builder(ranker)
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100))
        .build();
    let rounds = 6u64;
    let references = std::sync::Mutex::new(HashMap::from([(0u64, service.snapshot())]));
    let reqs = fan(2, 8);
    std::thread::scope(|scope| {
        let service = &service;
        let references = &references;
        let updater = scope.spawn(move || {
            for i in 0..rounds {
                service
                    .update(DatasetUpdate::Insert {
                        scores: vec![0.3 + 0.05 * i as f64, 0.7],
                        groups: vec![(i % 2) as u32],
                    })
                    .unwrap();
                references
                    .lock()
                    .unwrap()
                    .insert(service.version(), service.snapshot());
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        for _ in 0..3 {
            let reqs = reqs.clone();
            scope.spawn(move || {
                // A short cycle of repeated queries: most lookups are
                // cache hits racing the purge/swap.
                for req in reqs.iter().cycle().take(80) {
                    let got = service.suggest(req.clone()).unwrap();
                    let reference = loop {
                        if let Some(r) = references.lock().unwrap().get(&got.version) {
                            break r.snapshot();
                        }
                        std::thread::yield_now();
                    };
                    assert_eq!(
                        got,
                        reference.respond(req).unwrap(),
                        "answer at version {} diverged from that generation",
                        got.version
                    );
                }
            });
        }
        updater.join().unwrap();
    });
    let stats = service.stats().cache.unwrap();
    assert_eq!(stats.invalidations, rounds);
    service.shutdown();
}

/// A capacity-1 cache thrashes (every distinct region evicts the last)
/// but never compromises correctness.
#[test]
fn tiny_capacity_evicts_without_affecting_answers() {
    let ds = generic::uniform(45, 2, 0.9, 187);
    let ranker = build_cacheable(&ds, Strategy::TwoD);
    let direct = ranker.snapshot();
    let service = FairRankService::builder(ranker)
        .workers(1)
        .cache_capacity(1)
        .build();
    let reqs = fan(2, 30);
    for _ in 0..2 {
        for req in &reqs {
            assert_eq!(
                service.suggest(req.clone()).unwrap(),
                direct.respond(req).unwrap()
            );
        }
    }
    let stats = service.stats().cache.unwrap();
    assert!(stats.entries <= 1, "capacity must bound residency");
    assert!(
        stats.evictions > 0,
        "30 distinct queries through one slot must evict"
    );
    service.shutdown();
}
