//! Integration: the exact multi-dimensional pipeline (paper §4) —
//! HYPERPOLAR → SATREGIONS (+ arrangement tree) → MDBASELINE.

use fairrank::md::{closest_satisfactory_validated, sat_regions, SatRegionsOptions};
use fairrank::{FairRanker, KnownFairness, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::{compas, generic};
use fairrank_fairness::{FairnessOracle, Proportionality};
use fairrank_geometry::polar::{angular_distance, to_cartesian, to_polar};
use fairrank_geometry::HALF_PI;

#[test]
fn satregions_verdicts_match_dense_truth() {
    // d = 3 COMPAS-like data: every region's witness verdict must agree
    // with a dense grid of direct oracle evaluations *in the same region*.
    let full = compas::generate(&compas::CompasConfig {
        n: 40,
        ..Default::default()
    });
    let ds = full.project(&compas::validation_projection()).unwrap();
    let race = ds.type_attribute("race").unwrap();
    let oracle = Proportionality::new(race, 12).with_max_share(0, 0.6);

    let result = sat_regions(
        &ds,
        &oracle,
        &SatRegionsOptions {
            max_hyperplanes: Some(80),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(result.region_count >= result.satisfactory.len());

    // Witness self-consistency.
    for region in &result.satisfactory {
        let w = to_cartesian(1.0, &region.witness);
        assert!(oracle.is_satisfactory(&ds.rank(&w)));
    }
}

#[test]
fn mdbaseline_returns_fair_and_near_optimal_answers() {
    let ds = generic::uniform(24, 3, 0.95, 2024);
    let group = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(group, 6).with_max_count(0, 3);

    let regions = sat_regions(&ds, &oracle, &SatRegionsOptions::default())
        .unwrap()
        .satisfactory;
    assert!(!regions.is_empty(), "setup should be satisfiable");

    // Dense truth over the 2-angle space.
    let steps = 50;
    let mut sat_points = Vec::new();
    for i in 0..steps {
        for j in 0..steps {
            let a = vec![
                (i as f64 + 0.5) / steps as f64 * HALF_PI,
                (j as f64 + 0.5) / steps as f64 * HALF_PI,
            ];
            if oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, &a))) {
                sat_points.push(a);
            }
        }
    }
    assert!(!sat_points.is_empty());

    for q in [[0.1, 0.1], [1.4, 0.2], [0.7, 0.7], [0.2, 1.4]] {
        let res =
            closest_satisfactory_validated(&regions, &q, &ds, &oracle).expect("regions exist");
        // Answer must be genuinely fair…
        let w = to_cartesian(1.0, &res.angles);
        assert!(
            oracle.is_satisfactory(&ds.rank(&w)),
            "MDBASELINE answer unfair at query {q:?}"
        );
        // …and close to the dense optimum (grid resolution + hyperplane
        // linearization slack).
        let optimal = sat_points
            .iter()
            .map(|p| angular_distance(p, &q))
            .fold(f64::INFINITY, f64::min);
        assert!(
            res.distance <= optimal + 0.12,
            "query {q:?}: got {} vs dense optimum {}",
            res.distance,
            optimal
        );
    }
}

#[test]
fn md_exact_ranker_round_trip() {
    let ds = generic::uniform(20, 4, 0.9, 321);
    let group = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(group, 5).with_max_count(0, 2);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
        .strategy(Strategy::MdExact)
        .sat_regions_options(SatRegionsOptions {
            max_hyperplanes: Some(40),
            ..Default::default()
        })
        .build()
        .unwrap();

    for q in [
        vec![1.0, 0.1, 0.1, 0.1],
        vec![0.3, 0.9, 0.5, 0.2],
        vec![0.25, 0.25, 0.25, 0.25],
    ] {
        let sug = ranker.respond(&SuggestRequest::new(q.clone())).unwrap();
        match sug.fairness {
            KnownFairness::AlreadyFair => {
                assert!(oracle.is_satisfactory(&ds.rank(&q)));
            }
            KnownFairness::Suggested { .. } => {
                assert!(oracle.is_satisfactory(&ds.rank(&sug.weights)));
            }
            KnownFairness::Infeasible => {
                // Legal only if nothing satisfies — spot-check a fan.
                let mut any = false;
                for i in 0..10 {
                    for j in 0..10 {
                        let a = vec![i as f64 / 9.0 * HALF_PI, j as f64 / 9.0 * HALF_PI, 0.4];
                        if oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, &a))) {
                            any = true;
                        }
                    }
                }
                assert!(!any, "reported infeasible but satisfactory functions exist");
            }
        }
    }
}

#[test]
fn pruned_and_unpruned_satregions_agree_on_verdicts() {
    // §8 pruning must not change which functions are satisfactory.
    let ds = generic::uniform(40, 3, 0.8, 77);
    let group = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(group, 5).with_max_count(0, 2);

    let unpruned = sat_regions(
        &ds,
        &oracle,
        &SatRegionsOptions {
            max_hyperplanes: Some(120),
            prune_top_k: false,
            ..Default::default()
        },
    )
    .unwrap();
    let pruned = sat_regions(
        &ds,
        &oracle,
        &SatRegionsOptions {
            max_hyperplanes: Some(120),
            prune_top_k: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(pruned.items_used <= 40);
    assert!(pruned.hyperplane_count <= unpruned.hyperplane_count);

    // Check agreement by querying both region sets.
    for q in [[0.2, 0.2], [1.0, 0.5], [0.5, 1.2]] {
        let a = closest_satisfactory_validated(&unpruned.satisfactory, &q, &ds, &oracle);
        let b = closest_satisfactory_validated(&pruned.satisfactory, &q, &ds, &oracle);
        match (a, b) {
            (Some(ra), Some(rb)) => {
                // Both must be fair; distances comparable (pruned index has
                // coarser regions, so allow slack).
                let wa = to_cartesian(1.0, &ra.angles);
                let wb = to_cartesian(1.0, &rb.angles);
                assert!(oracle.is_satisfactory(&ds.rank(&wa)));
                assert!(oracle.is_satisfactory(&ds.rank(&wb)));
            }
            (None, None) => {}
            (x, y) => panic!("pruning changed satisfiability: {x:?} vs {y:?}"),
        }
    }
}

#[test]
fn query_angles_round_trip_weights() {
    // to_polar/to_cartesian self-consistency on the ranker query path.
    let w = vec![0.4, 1.2, 0.3, 0.8];
    let (r, angles) = to_polar(&w);
    let back = to_cartesian(r, &angles);
    for (a, b) in w.iter().zip(&back) {
        assert!((a - b).abs() < 1e-9);
    }
}
