//! Malformed-input robustness for the network tier: the HTTP/1.1
//! parser and the JSON codec must never panic, no matter what arrives
//! on the wire, and a live server must answer garbage with a 4xx and
//! keep serving. Mirrors the byte-mutation fuzz style of
//! `tests/ranker_persistence.rs`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use fairrank::{FairRanker, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_fairness::Proportionality;
use fairrank_net::http::{parse_request, HttpError, MAX_BODY_BYTES, MAX_HEAD_BYTES};
use fairrank_net::json::{decode_request, decode_suggestion, encode_request, Json};
use fairrank_net::{Client, HttpServer, ServerConfig};
use fairrank_serve::FairRankService;

/// A canonical well-formed request the mutation strategies start from.
fn valid_request_bytes() -> Vec<u8> {
    let body = encode_request(&SuggestRequest::new(vec![1.0, 0.5]).with_top_k(3));
    format!(
        "POST /suggest HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

// ---------------------------------------------------------------------------
// Deterministic edge cases: the parser rejects, with the right status,
// instead of panicking or over-reading.
// ---------------------------------------------------------------------------

#[test]
fn parser_edge_cases_map_to_the_right_status() {
    // Oversized declared body: reject as soon as the head is parsed.
    let huge = format!(
        "POST /suggest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    assert_eq!(parse_request(huge.as_bytes()), Err(HttpError::BodyTooLarge));

    // A head that never terminates within the cap.
    let mut runaway = b"GET /stats HTTP/1.1\r\n".to_vec();
    while runaway.len() <= MAX_HEAD_BYTES {
        runaway.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    assert_eq!(parse_request(&runaway), Err(HttpError::HeadersTooLarge));

    // Chunked bodies are not supported: 411, not a hang.
    let chunked = b"POST /suggest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
    assert_eq!(parse_request(chunked), Err(HttpError::LengthRequired));

    // Invalid UTF-8 in the head is a 400.
    let mut bad_utf8 = b"GET /he".to_vec();
    bad_utf8.push(0xFF);
    bad_utf8.extend_from_slice(b"lthz HTTP/1.1\r\n\r\n");
    assert!(matches!(
        parse_request(&bad_utf8),
        Err(HttpError::BadRequest(_))
    ));

    // Conflicting duplicate Content-Length is a smuggling vector: 400.
    let smuggle = b"POST /suggest HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nabcd";
    assert!(matches!(
        parse_request(smuggle),
        Err(HttpError::BadRequest(_))
    ));

    // An incomplete request is a request for more bytes, not an error.
    let valid = valid_request_bytes();
    for cut in [0, 1, 10, valid.len() - 1] {
        assert_eq!(parse_request(&valid[..cut]), Ok(None), "cut at {cut}");
    }
    let (req, consumed) = parse_request(&valid).unwrap().unwrap();
    assert_eq!(req.method, "POST");
    assert_eq!(req.path, "/suggest");
    assert_eq!(consumed, valid.len());
}

// ---------------------------------------------------------------------------
// Property fuzz: arbitrary and mutated bytes never panic the parsers.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary byte soup: `parse_request` returns, it never panics.
    #[test]
    fn random_bytes_never_panic_http_parser(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = parse_request(&bytes);
    }

    /// Byte mutations and truncations of a valid request never panic,
    /// and whatever parses still fits inside the input.
    #[test]
    fn mutated_requests_never_panic_http_parser(
        positions in prop::collection::vec(0usize..200, 0..8),
        xor in 1u8..=255,
        cut in 0usize..200,
    ) {
        let mut bytes = valid_request_bytes();
        for &p in &positions {
            let p = p % bytes.len();
            bytes[p] ^= xor;
        }
        bytes.truncate(bytes.len().saturating_sub(cut % bytes.len()));
        if let Ok(Some((_, consumed))) = parse_request(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// Arbitrary text never panics `Json::parse`; when it does parse,
    /// the shape decoders reject or accept without panicking either.
    #[test]
    fn random_text_never_panics_json_parser(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(doc) = Json::parse(&text) {
            let _ = decode_request(&doc);
            let _ = decode_suggestion(&doc);
        }
    }

    /// Mutations of a valid JSON request body never panic parse or
    /// decode.
    #[test]
    fn mutated_json_never_panics(
        positions in prop::collection::vec(0usize..200, 0..6),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_request(&SuggestRequest::new(vec![0.3, 0.9])).into_bytes();
        for &p in &positions {
            let p = p % bytes.len();
            bytes[p] ^= xor;
        }
        if let Ok(text) = std::str::from_utf8(&bytes) {
            if let Ok(doc) = Json::parse(text) {
                let _ = decode_request(&doc);
            }
        }
    }

    /// The wire's f64 encoding is exact: shortest-round-trip formatting
    /// plus correctly-rounded parsing reproduces the bits.
    #[test]
    fn f64_wire_round_trip_is_exact(x in -1.0e12f64..1.0e12) {
        let text = Json::Num(x).to_text();
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        prop_assert_eq!(back.to_bits(), x.to_bits());
    }

    /// Deep nesting is bounded, not a stack overflow.
    #[test]
    fn deep_nesting_is_rejected_not_fatal(depth in 1usize..300) {
        let text = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let _ = Json::parse(&text);
    }
}

// ---------------------------------------------------------------------------
// End to end: a live server answers garbage with a 4xx and survives.
// ---------------------------------------------------------------------------

fn tiny_server() -> (HttpServer, std::net::SocketAddr) {
    let ds = generic::uniform(24, 2, 0.9, 75);
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Box::new(Proportionality::new(attr, 6).with_max_count(0, 4));
    let ranker = FairRanker::builder(ds, oracle)
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    let service = Arc::new(FairRankService::builder(ranker).workers(1).build());
    let server = HttpServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

fn raw_status(addr: std::net::SocketAddr, payload: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(payload).unwrap();
    let mut response = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                if response.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = std::str::from_utf8(&response).ok()?;
    head.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn live_server_answers_garbage_with_4xx_and_survives() {
    let (server, addr) = tiny_server();

    let cases: &[(&[u8], u16)] = &[
        (b"NOT A REQUEST AT ALL\r\n\r\n", 400),
        (b"GET \xFF\xFE HTTP/1.1\r\n\r\n", 400),
        (
            b"POST /suggest HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\nabcd",
            400,
        ),
        (
            b"POST /suggest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            411,
        ),
        (
            b"POST /suggest HTTP/1.1\r\nContent-Length: 5000000000\r\n\r\n",
            413,
        ),
        // Well-formed HTTP carrying broken JSON is a 400 too.
        (
            b"POST /suggest HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"query\":",
            400,
        ),
    ];
    for (payload, want) in cases {
        let got = raw_status(addr, payload);
        assert_eq!(
            got,
            Some(*want),
            "payload {:?}",
            String::from_utf8_lossy(payload)
        );
    }

    // The server is still healthy after all of that.
    let mut client = Client::connect(addr).unwrap();
    let resp = client
        .suggest(&SuggestRequest::new(vec![1.0, 0.4]))
        .unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}
