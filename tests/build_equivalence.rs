//! Build-path equivalence gate: every fast path introduced for the
//! offline build wall must be *bit-identical* to the slow reference
//! path it replaces.
//!
//! Three families of claims, each property-tested on randomized inputs:
//!
//! * **Parallel builders** — the 2-D ray sweep (sector-sharded), the
//!   exact SATREGIONS arrangement (threaded hyperplane enumeration +
//!   per-region verification), and the approximate grid (parallel
//!   MARKCELL) each produce byte-for-byte the same serialized ranker at
//!   1, 2, and 4 workers.
//! * **Lazy SATREGIONS** — a ranker built with deferred region
//!   materialization answers every query identically to the eager
//!   build and serializes to the same bytes (serialization forces
//!   materialization).
//! * **Streaming persist** — the chunked v3 codec decodes to the same
//!   value through the whole-buffer and the incremental reader paths
//!   at every chunk granularity, and both paths *reject* every
//!   single-byte mutation and every truncation (per-chunk FNV seals).

use std::io::Cursor;

use proptest::prelude::*;

use fairrank::approximate::BuildOptions;
use fairrank::md::{sat_regions, SatRegionsOptions};
use fairrank::persist::{
    decode_dataset, decode_dataset_from, decode_regions, decode_regions_from, encode_dataset,
    encode_dataset_chunked, encode_regions, encode_regions_chunked, DEFAULT_CHUNK_LEN,
};
use fairrank::{FairRanker, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::Proportionality;
use fairrank_geometry::HALF_PI;

fn biased(n: usize, d: usize, seed: u64) -> (Dataset, Proportionality) {
    let ds = generic::uniform(n, d, 0.9, seed);
    let attr = ds.type_attribute("group").unwrap();
    let k = (n / 4).max(4);
    let oracle = Proportionality::new(attr, k).with_max_count(0, k / 2);
    (ds, oracle)
}

/// A fan of valid queries covering the positive orthant.
fn query_fan(d: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
            let mut q = vec![0.4 + t.sin(); d];
            q[0] = 0.4 + t.cos();
            q[i % d] += 0.7;
            q
        })
        .collect()
}

// ---------------------------------------------------------------------
// Parallel builders: serial vs 2 vs 4 workers, byte-identical rankers
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 2DRAYSWEEP sharded by angular sector: same interval structure,
    /// same serialized ranker, for every worker count.
    #[test]
    fn twod_parallel_build_bit_identical(seed in 0u64..1000, n in 24usize..64) {
        let (ds, oracle) = biased(n, 2, seed);
        let build = |threads: usize| {
            FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
                .strategy(Strategy::TwoD)
                .build_threads(threads)
                .build()
                .unwrap()
                .to_bytes()
        };
        let serial = build(1);
        for threads in [2usize, 4] {
            prop_assert_eq!(&build(threads), &serial, "threads = {}", threads);
        }
    }

    /// Exact SATREGIONS: threaded hyperplane enumeration and per-region
    /// witness verification reproduce the serial arrangement exactly.
    #[test]
    fn exact_parallel_build_bit_identical(seed in 0u64..1000, n in 12usize..28) {
        let (ds, oracle) = biased(n, 3, seed);
        let build = |threads: usize| {
            FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
                .strategy(Strategy::MdExact)
                .sat_regions_options(SatRegionsOptions {
                    max_hyperplanes: Some(40),
                    threads: Some(threads),
                    ..Default::default()
                })
                .build()
                .unwrap()
                .to_bytes()
        };
        let serial = build(1);
        for threads in [2usize, 4] {
            prop_assert_eq!(&build(threads), &serial, "threads = {}", threads);
        }
    }

    /// Approximate grid: parallel MARKCELL assembles the same index —
    /// same satisfied cells, functions, coloring — as the serial loop.
    #[test]
    fn approx_parallel_build_bit_identical(seed in 0u64..1000, n in 20usize..48) {
        let (ds, oracle) = biased(n, 3, seed);
        let build = |threads: usize| {
            FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
                .strategy(Strategy::MdApprox)
                .approx_options(BuildOptions {
                    n_cells: 120,
                    max_hyperplanes: Some(80),
                    threads: Some(threads),
                    ..Default::default()
                })
                .build()
                .unwrap()
                .to_bytes()
        };
        let serial = build(1);
        for threads in [2usize, 4] {
            prop_assert_eq!(&build(threads), &serial, "threads = {}", threads);
        }
    }

    /// Parallel SATREGIONS at the raw algorithm level, not just through
    /// the ranker: identical witnesses, counts, and region sets.
    #[test]
    fn sat_regions_threaded_matches_serial(seed in 0u64..1000, n in 12usize..24) {
        let (ds, oracle) = biased(n, 3, seed);
        let run = |threads: usize| {
            sat_regions(&ds, &oracle, &SatRegionsOptions {
                max_hyperplanes: Some(30),
                threads: Some(threads),
                ..Default::default()
            })
            .unwrap()
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            let par = run(threads);
            prop_assert_eq!(par.region_count, serial.region_count);
            prop_assert_eq!(par.hyperplane_count, serial.hyperplane_count);
            prop_assert_eq!(
                encode_regions(&par.satisfactory, par.dim),
                encode_regions(&serial.satisfactory, serial.dim)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Lazy SATREGIONS materialization
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lazy region materialization: every query answered identically to
    /// the eager build, and serialization (which forces materialization)
    /// yields the same bytes.
    #[test]
    fn lazy_regions_match_eager(seed in 0u64..1000, n in 12usize..24) {
        let (ds, oracle) = biased(n, 3, seed);
        let build = |lazy: bool| {
            FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
                .strategy(Strategy::MdExact)
                .sat_regions_options(SatRegionsOptions {
                    max_hyperplanes: Some(40),
                    ..Default::default()
                })
                .lazy_regions(lazy)
                .build()
                .unwrap()
        };
        let eager = build(false);
        let lazy = build(true);
        for q in query_fan(3, 12) {
            let a = eager.respond(&SuggestRequest::new(q.clone())).unwrap();
            let b = lazy.respond(&SuggestRequest::new(q)).unwrap();
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(eager.to_bytes(), lazy.to_bytes());
    }
}

// ---------------------------------------------------------------------
// Streaming persist: chunked decode ≡ whole-buffer decode
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunked dataset artifacts decode identically through the
    /// whole-buffer and streaming paths, at arbitrary chunk sizes.
    #[test]
    fn chunked_dataset_decode_paths_agree(
        seed in 0u64..1000,
        n in 1usize..40,
        d in 2usize..5,
        chunk_len in 1usize..4096,
    ) {
        let ds = generic::uniform(n, d, 0.7, seed);
        let bytes = encode_dataset_chunked(&ds, chunk_len);
        let whole = decode_dataset(&bytes).unwrap();
        let mut cursor = Cursor::new(bytes.as_slice());
        let streamed = decode_dataset_from(&mut cursor).unwrap();
        prop_assert_eq!(cursor.position() as usize, bytes.len());
        prop_assert_eq!(&whole, &ds);
        prop_assert_eq!(&streamed, &ds);
        // And the chunked artifact carries the same value as the plain
        // v2 whole-buffer encoding of the same dataset.
        prop_assert_eq!(decode_dataset(&encode_dataset(&ds)).unwrap(), ds);
    }

    /// Every single-byte mutation of a chunked artifact is rejected by
    /// both decode paths — the per-chunk and outer seals leave no
    /// unprotected byte.
    #[test]
    fn chunked_mutation_rejected(
        seed in 0u64..1000,
        pos in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let ds = generic::uniform(12, 3, 0.7, seed);
        let mut bytes = encode_dataset_chunked(&ds, 64);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(decode_dataset(&bytes).is_err(), "whole-buffer accepted flip at {}", pos);
        prop_assert!(
            decode_dataset_from(&mut Cursor::new(bytes.as_slice())).is_err(),
            "streaming accepted flip at {}",
            pos
        );
    }

    /// Every truncation of a chunked artifact is rejected by both
    /// decode paths.
    #[test]
    fn chunked_truncation_rejected(seed in 0u64..1000, cut in 1usize..10_000) {
        let ds = generic::uniform(12, 3, 0.7, seed);
        let bytes = encode_dataset_chunked(&ds, 64);
        let cut = cut % bytes.len();
        let short = &bytes[..cut];
        prop_assert!(decode_dataset(short).is_err(), "whole-buffer accepted cut at {}", cut);
        prop_assert!(
            decode_dataset_from(&mut Cursor::new(short)).is_err(),
            "streaming accepted cut at {}",
            cut
        );
    }
}

/// Chunked region artifacts stream identically to the whole-buffer
/// path, over regions produced by a real SATREGIONS build.
#[test]
fn chunked_regions_decode_paths_agree() {
    let (ds, oracle) = biased(16, 3, 7);
    let built = sat_regions(
        &ds,
        &oracle,
        &SatRegionsOptions {
            max_hyperplanes: Some(40),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        !built.satisfactory.is_empty(),
        "fixture should produce regions"
    );
    let plain = encode_regions(&built.satisfactory, built.dim);
    for chunk_len in [1usize, 33, DEFAULT_CHUNK_LEN] {
        let bytes = encode_regions_chunked(&built.satisfactory, built.dim, chunk_len);
        let (whole, dim_whole) = decode_regions(&bytes).unwrap();
        let mut cursor = Cursor::new(bytes.as_slice());
        let (streamed, dim_streamed) = decode_regions_from(&mut cursor).unwrap();
        assert_eq!(cursor.position() as usize, bytes.len());
        assert_eq!(dim_whole, built.dim);
        assert_eq!(dim_streamed, built.dim);
        assert_eq!(encode_regions(&whole, dim_whole), plain);
        assert_eq!(encode_regions(&streamed, dim_streamed), plain);
    }
}

/// The environment knob resolves like the explicit builder knob: a
/// build under `FAIRRANK_BUILD_THREADS` stays bit-identical to serial.
/// (Env vars are process-global, so this stays a single sequential
/// test; the values are restored before it returns.)
#[test]
fn env_thread_knob_is_bit_identical() {
    let (ds, oracle) = biased(40, 2, 11);
    let build = || {
        FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
            .strategy(Strategy::TwoD)
            .build()
            .unwrap()
            .to_bytes()
    };
    let before = std::env::var("FAIRRANK_BUILD_THREADS").ok();
    std::env::set_var("FAIRRANK_BUILD_THREADS", "1");
    let serial = build();
    std::env::set_var("FAIRRANK_BUILD_THREADS", "4");
    let parallel = build();
    match before {
        Some(v) => std::env::set_var("FAIRRANK_BUILD_THREADS", v),
        None => std::env::remove_var("FAIRRANK_BUILD_THREADS"),
    }
    assert_eq!(parallel, serial);
}
