//! Whole-ranker persistence: save/load round-trips across all three
//! backends, corruption/truncation/wrong-tag rejection, and fuzz-style
//! robustness of the decoders (no panics on arbitrary byte mutations).

use proptest::prelude::*;

use fairrank::approximate::BuildOptions;
use fairrank::md::SatRegionsOptions;
use fairrank::persist::{
    decode_backend, decode_ranker, decode_ranker_versioned, decode_update_log, encode_update_log,
    PersistError, TAG_APPROX, TAG_INTERVALS, TAG_RANKER, TAG_REGIONS,
};
use fairrank::{DatasetUpdate, FairRankError, FairRanker, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::Proportionality;
use fairrank_geometry::HALF_PI;

fn biased(n: usize, d: usize, seed: u64) -> (Dataset, Proportionality) {
    let ds = generic::uniform(n, d, 0.9, seed);
    let attr = ds.type_attribute("group").unwrap();
    let k = (n / 4).max(4);
    let oracle = Proportionality::new(attr, k).with_max_count(0, k / 2);
    (ds, oracle)
}

fn build(strategy: Strategy, ds: &Dataset, oracle: &Proportionality) -> FairRanker {
    FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
        .strategy(strategy)
        .sat_regions_options(SatRegionsOptions {
            max_hyperplanes: Some(60),
            ..Default::default()
        })
        .approx_options(BuildOptions {
            n_cells: 150,
            max_hyperplanes: Some(100),
            ..Default::default()
        })
        .build()
        .unwrap()
}

/// A fan of valid queries covering the positive orthant.
fn query_fan(d: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
            let mut q = vec![0.4 + t.sin(); d];
            q[0] = 0.4 + t.cos();
            q[i % d] += 0.7;
            q
        })
        .collect()
}

/// Round-trip through bytes: the reloaded ranker answers a fixed query
/// set identically to the in-memory original.
fn assert_roundtrip(strategy: Strategy, n: usize, d: usize, seed: u64) {
    let (ds, oracle) = biased(n, d, seed);
    let ranker = build(strategy, &ds, &oracle);
    let bytes = ranker.to_bytes();
    let reloaded = FairRanker::from_bytes(&bytes, ds.clone(), Box::new(oracle)).unwrap();
    assert_eq!(ranker.backend_stats(), reloaded.backend_stats());
    for q in query_fan(d, 25) {
        let req = SuggestRequest::new(q.clone());
        assert_eq!(
            ranker.respond(&req).unwrap(),
            reloaded.respond(&req).unwrap(),
            "{strategy:?} diverged after reload at {q:?}"
        );
    }
}

#[test]
fn roundtrip_twod() {
    assert_roundtrip(Strategy::TwoD, 60, 2, 7);
}

#[test]
fn roundtrip_md_exact() {
    assert_roundtrip(Strategy::MdExact, 20, 3, 8);
}

#[test]
fn roundtrip_md_approx() {
    assert_roundtrip(Strategy::MdApprox, 40, 3, 9);
}

#[test]
fn roundtrip_through_files() {
    let (ds, oracle) = biased(50, 2, 21);
    let ranker = build(Strategy::TwoD, &ds, &oracle);
    let path = std::env::temp_dir().join(format!("fairrank_roundtrip_{}.frix", std::process::id()));
    ranker.save(&path).unwrap();
    let reloaded = FairRanker::load(&path, ds, Box::new(oracle)).unwrap();
    for q in query_fan(2, 15) {
        let req = SuggestRequest::new(q);
        assert_eq!(
            ranker.respond(&req).unwrap(),
            reloaded.respond(&req).unwrap()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_missing_file_is_io_error() {
    let (ds, oracle) = biased(20, 2, 3);
    let err = FairRanker::load(
        std::env::temp_dir().join("fairrank_does_not_exist.frix"),
        ds,
        Box::new(oracle),
    )
    .unwrap_err();
    assert!(matches!(err, FairRankError::Persist(PersistError::Io(_))));
}

#[test]
fn corrupted_byte_rejected() {
    let (ds, oracle) = biased(40, 2, 11);
    let ranker = build(Strategy::TwoD, &ds, &oracle);
    let bytes = ranker.to_bytes();
    // A flip anywhere — header, dimensionality, tag, embedded payload,
    // checksum — must be caught: the outer seal covers the envelope
    // end-to-end.
    for pos in [
        0,
        4,
        7,
        8,
        12,
        bytes.len() / 2,
        bytes.len() - 9,
        bytes.len() - 1,
    ] {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        assert!(
            FairRanker::from_bytes(&corrupt, ds.clone(), Box::new(oracle.clone())).is_err(),
            "flip at byte {pos} went undetected"
        );
    }
}

#[test]
fn wrong_tag_and_unknown_backend_rejected() {
    let (ds, oracle) = biased(40, 2, 12);
    let ranker = build(Strategy::TwoD, &ds, &oracle);
    // A raw artifact is not a ranker envelope.
    let artifact = ranker.backend().encode();
    assert!(matches!(
        decode_ranker(&artifact),
        Err(PersistError::WrongArtifact {
            expected: TAG_RANKER,
            ..
        })
    ));
    // A backend tag nobody registered.
    for bogus in [0u8, 77, TAG_RANKER] {
        assert!(matches!(
            decode_backend(bogus, &artifact),
            Err(PersistError::UnknownBackend(t)) if t == bogus
        ));
    }
    // Valid tags over the wrong artifact bytes are rejected too.
    for tag in [TAG_APPROX, TAG_REGIONS] {
        assert!(decode_backend(tag, &artifact).is_err());
    }
    assert!(decode_backend(TAG_INTERVALS, &artifact).is_ok());
}

#[test]
fn update_counter_round_trips_through_envelope() {
    let (ds, oracle) = biased(40, 2, 31);
    let mut ranker = build(Strategy::TwoD, &ds, &oracle);
    assert_eq!(ranker.version(), 0);
    for i in 0..3 {
        ranker
            .update(DatasetUpdate::Insert {
                scores: vec![0.2 + 0.1 * f64::from(i), 0.7],
                groups: vec![1],
            })
            .unwrap();
    }
    assert_eq!(ranker.version(), 3);
    let bytes = ranker.to_bytes();
    let (dim, version, _) = decode_ranker_versioned(&bytes).unwrap();
    assert_eq!((dim, version), (2, 3));
    let reloaded =
        FairRanker::from_bytes(&bytes, ranker.dataset().clone(), Box::new(oracle)).unwrap();
    assert_eq!(reloaded.version(), 3, "epoch must survive the hand-off");
    for q in query_fan(2, 15) {
        let req = SuggestRequest::new(q);
        assert_eq!(
            ranker.respond(&req).unwrap(),
            reloaded.respond(&req).unwrap()
        );
    }
}

#[test]
fn hand_crafted_future_ranker_version_rejected_cleanly() {
    let (ds, oracle) = biased(30, 2, 32);
    let ranker = build(Strategy::TwoD, &ds, &oracle);
    let mut bytes = ranker.to_bytes();
    // Bump the envelope's format version field (offset 4..6) past what
    // this library understands and re-seal so only the version differs.
    let body_len = bytes.len() - 8;
    bytes.truncate(body_len);
    bytes[4] = 0x63;
    bytes[5] = 0x00;
    let sum: u64 = {
        // FNV-1a, matching the codec.
        let mut h = 0xcbf29ce484222325u64;
        for &b in &bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    };
    bytes.extend_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        decode_ranker_versioned(&bytes),
        Err(PersistError::UnsupportedVersion(0x63))
    ));
}

#[test]
fn dimension_mismatch_on_load_rejected() {
    let (ds2, oracle2) = biased(40, 2, 13);
    let ranker = build(Strategy::TwoD, &ds2, &oracle2);
    let bytes = ranker.to_bytes();
    let (ds3, oracle3) = biased(30, 3, 14);
    assert!(matches!(
        FairRanker::from_bytes(&bytes, ds3, Box::new(oracle3)),
        Err(FairRankError::DimensionMismatch {
            expected: 2,
            found: 3
        })
    ));
}

#[test]
fn every_truncation_rejected_without_panic() {
    for strategy in [Strategy::TwoD, Strategy::MdExact, Strategy::MdApprox] {
        let d = if strategy == Strategy::TwoD { 2 } else { 3 };
        let (ds, oracle) = biased(25, d, 15);
        let bytes = build(strategy, &ds, &oracle).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                decode_ranker(&bytes[..cut]).is_err(),
                "{strategy:?}: accepted a {cut}-byte prefix of {}",
                bytes.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fuzz-style robustness: arbitrary byte mutations of a valid
    /// whole-ranker envelope never panic any decoder — they either fail
    /// structurally or are caught by the checksum. (Runs the mutated
    /// bytes through the ranker decoder *and* every per-backend
    /// decoder.)
    #[test]
    fn mutated_envelopes_never_panic(
        seed in 0u64..50,
        positions in prop::collection::vec(0usize..10_000, 1..8),
        xor in 1u8..=255,
        cut in 0usize..10_000,
    ) {
        let (ds, oracle) = biased(30, 2, seed);
        let ranker = build(Strategy::TwoD, &ds, &oracle);
        let mut bytes = ranker.to_bytes();
        for &p in &positions {
            let len = bytes.len();
            bytes[p % len] ^= xor;
        }
        bytes.truncate(cut.max(1).min(bytes.len()));
        // Any outcome but a panic is acceptable; a (vanishingly
        // unlikely) checksum collision would surface as Ok.
        let _ = decode_ranker(&bytes);
        let _ = decode_ranker_versioned(&bytes);
        for tag in [TAG_INTERVALS, TAG_REGIONS, TAG_APPROX] {
            let _ = decode_backend(tag, &bytes);
        }
    }

    /// Targeted mutation of the version-stamp region (format version
    /// field and the 8 update-counter bytes): the decoders must reject
    /// cleanly — structurally or by checksum — and never panic.
    #[test]
    fn mutated_version_bytes_fail_cleanly(
        seed in 0u64..20,
        offset in 4usize..22,
        xor in 1u8..=255,
    ) {
        let (ds, oracle) = biased(25, 2, seed);
        let mut ranker = build(Strategy::TwoD, &ds, &oracle);
        ranker
            .update(DatasetUpdate::Rescore { item: 1, scores: vec![0.4, 0.9] })
            .unwrap();
        let mut bytes = ranker.to_bytes();
        bytes[offset] ^= xor;
        let res = decode_ranker_versioned(&bytes);
        prop_assert!(res.is_err(), "flip at {offset} went undetected");
    }

    /// The replication update-log frame survives a round trip for
    /// arbitrary well-formed update sequences.
    #[test]
    fn update_log_round_trips(
        base in 0u64..1_000_000,
        raw in prop::collection::vec(
            (0u8..3, 0u32..500, prop::collection::vec(-10.0f64..10.0, 1..5)),
            0..12,
        ),
    ) {
        let updates: Vec<DatasetUpdate> = raw
            .into_iter()
            .map(|(kind, item, scores)| match kind {
                0 => DatasetUpdate::Insert { scores, groups: vec![item % 4] },
                1 => DatasetUpdate::Remove { item },
                _ => DatasetUpdate::Rescore { item, scores },
            })
            .collect();
        let bytes = encode_update_log(base, &updates);
        let (back_base, back) = decode_update_log(&bytes).unwrap();
        prop_assert_eq!(back_base, base);
        prop_assert_eq!(back, updates);
    }

    /// Byte-mutation fuzz for the update-log decoder — mirror of
    /// `mutated_envelopes_never_panic` for the replication wire format:
    /// arbitrary flips and truncations never panic, and any flip that
    /// survives structural checks is caught by the checksum.
    #[test]
    fn mutated_update_log_never_panics(
        base in 0u64..1000,
        positions in prop::collection::vec(0usize..10_000, 1..8),
        xor in 1u8..=255,
        cut in 0usize..10_000,
    ) {
        let updates = vec![
            DatasetUpdate::Insert { scores: vec![0.5, 0.25], groups: vec![1] },
            DatasetUpdate::Remove { item: 3 },
            DatasetUpdate::Rescore { item: 0, scores: vec![0.125, 0.875] },
        ];
        let mut bytes = encode_update_log(base, &updates);
        for &p in &positions {
            let len = bytes.len();
            bytes[p % len] ^= xor;
        }
        bytes.truncate(cut.max(1).min(bytes.len()));
        // No panic is the property; a decode that still succeeds must be
        // byte-identical input (only possible when flips cancelled out).
        let _ = decode_update_log(&bytes);
    }
}
