//! Empirical Theorem-6 validation at the paper's configuration
//! (`N = 40,000` grid cells): the approximate index's suggested function
//! must lie within the paper's distance bound of the true optimum on
//! sampled queries — closing the long-open ROADMAP item.
//!
//! Theorem 6: for a query `f` with nearest satisfactory function `f_opt`,
//! the function `f_app` returned by MDONLINE satisfies
//! `θ(f, f_app) ≤ θ(f, f_opt) + bound(d, N)`.

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank_datasets::synthetic::generic;
use fairrank_fairness::{FairnessOracle as _, Proportionality};
use fairrank_geometry::polar::{angular_distance, to_cartesian};
use fairrank_geometry::HALF_PI;

const N_CELLS: usize = 40_000;

#[test]
fn theorem6_bound_holds_at_paper_scale() {
    let ds = generic::uniform(40, 3, 0.9, 99);
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(attr, 8).with_max_count(0, 3);
    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: N_CELLS,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        index.grid().cell_count() >= N_CELLS * 9 / 10,
        "grid fell far short of the requested N: {}",
        index.grid().cell_count()
    );
    assert!(index.is_satisfiable(), "setup must be satisfiable");
    let bound = index.error_bound();
    assert!(
        bound > 0.0 && bound < 0.1,
        "at N = 40,000 the Theorem 6 bound should be a few hundredths of a radian, got {bound}"
    );

    // Ground truth: dense sampling of the satisfactory set. The sampled
    // "optimum" is itself discretized, so it is an *upper* bound on the
    // true optimal distance accurate to about one sampling step.
    let steps = 90;
    let step_slack = HALF_PI / steps as f64 * std::f64::consts::SQRT_2;
    let mut sat_points: Vec<Vec<f64>> = Vec::new();
    for i in 0..steps {
        for j in 0..steps {
            let ang = vec![
                (i as f64 + 0.5) / steps as f64 * HALF_PI,
                (j as f64 + 0.5) / steps as f64 * HALF_PI,
            ];
            if oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, &ang))) {
                sat_points.push(ang);
            }
        }
    }
    assert!(!sat_points.is_empty());

    // Sampled queries across the quadrant, including near-axis ones.
    let queries: Vec<[f64; 2]> = (0..24)
        .map(|i| {
            let a = (i as f64 * 0.618_033_988_749_895).fract() * HALF_PI;
            let b = (i as f64 * 0.754_877_666_246_693).fract() * HALF_PI;
            [a.max(0.01), b.max(0.01)]
        })
        .collect();
    let mut worst_excess = f64::NEG_INFINITY;
    for q in &queries {
        let opt = sat_points
            .iter()
            .map(|p| angular_distance(p, q))
            .fold(f64::INFINITY, f64::min);
        let got = index.lookup(q).expect("satisfiable index answers");
        let app = angular_distance(got, q);
        let excess = app - (opt + step_slack);
        worst_excess = worst_excess.max(excess);
        assert!(
            excess <= bound,
            "query {q:?}: θ_app = {app} exceeds θ_opt = {opt} + step slack + bound {bound}"
        );
    }
    // The bound must be doing real work: at least one query should sit
    // strictly inside it rather than the assertions being vacuous.
    assert!(worst_excess.is_finite());
}

#[test]
fn theorem6_bound_shrinks_with_n() {
    // The §5 trade-off the user controls: more cells, tighter guarantee.
    let ds = generic::uniform(25, 3, 0.8, 41);
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
    let bound_at = |n_cells: usize| {
        ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells,
                max_hyperplanes: Some(120),
                ..Default::default()
            },
        )
        .unwrap()
        .error_bound()
    };
    let coarse = bound_at(400);
    let fine = bound_at(10_000);
    assert!(
        fine < coarse / 2.0,
        "25x the cells should cut the bound well past half: {coarse} -> {fine}"
    );
}

#[test]
fn suggested_functions_validated_at_scale() {
    // Every function the 40k-cell index stores was validated against the
    // real oracle during the build — spot-check that contract end to end.
    let ds = generic::uniform(40, 3, 0.9, 99);
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(attr, 8).with_max_count(0, 3);
    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: N_CELLS,
            ..Default::default()
        },
    )
    .unwrap();
    for f in index.functions().iter().step_by(7) {
        assert!(
            oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, f))),
            "stored function {f:?} fails the oracle"
        );
    }
}
