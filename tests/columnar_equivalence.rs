//! Columnar-core equivalence gate: the vectorized kernels, the scalar
//! per-item reference, and the **pre-refactor row-major semantics**
//! (re-implemented here as an independent model) must agree
//! bit-identically — on raw scoring, on full and top-k rankings, across
//! all three index backends, after incremental update sequences, and
//! through both persistence layouts (columnar v2 and legacy row-major
//! v1 streams).
//!
//! This is the contract that made the struct-of-arrays refactor safe to
//! land: the columnar layout and its kernels are an optimization, never
//! a semantic. `score_all_into` accumulates column `j` in ascending
//! order starting from 0.0 — the exact operation sequence of the scalar
//! fold `((0 + w₀x₀) + w₁x₁) + …` — so equality below is on f64 *bit
//! patterns*, not within a tolerance.

use proptest::prelude::*;

use fairrank::approximate::BuildOptions;
use fairrank::persist::{decode_dataset, encode_dataset, encode_dataset_row_major};
use fairrank::{FairRanker, Strategy, SuggestRequest};
use fairrank_datasets::kernels;
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::{Dataset, RankWorkspace};
use fairrank_fairness::Proportionality;

// ---------------------------------------------------------------------
// The pre-refactor row-major model
// ---------------------------------------------------------------------

/// The `Dataset` scoring/ranking semantics as they were before the
/// columnar refactor: one flat row-major `Vec<f64>`, one scalar dot
/// product per item, a full `sort_unstable_by` over all indices. Kept
/// deliberately independent of the library's code paths.
struct RowMajorRef {
    flat: Vec<f64>,
    n: usize,
    d: usize,
}

impl RowMajorRef {
    fn of(ds: &Dataset) -> RowMajorRef {
        RowMajorRef {
            flat: ds.to_row_major(),
            n: ds.len(),
            d: ds.dim(),
        }
    }

    fn score(&self, w: &[f64], i: usize) -> f64 {
        self.flat[i * self.d..(i + 1) * self.d]
            .iter()
            .zip(w)
            .map(|(x, b)| x * b)
            .sum()
    }

    fn rank(&self, w: &[f64]) -> Vec<u32> {
        let scores: Vec<f64> = (0..self.n).map(|i| self.score(w, i)).collect();
        let mut order: Vec<u32> = (0..self.n as u32).collect();
        order.sort_unstable_by(|a, b| {
            scores[*b as usize]
                .total_cmp(&scores[*a as usize])
                .then(a.cmp(b))
        });
        order
    }

    fn insert(&mut self, scores: &[f64]) {
        self.flat.extend_from_slice(scores);
        self.n += 1;
    }

    fn remove(&mut self, i: usize) {
        self.flat.drain(i * self.d..(i + 1) * self.d);
        self.n -= 1;
    }

    fn rescore(&mut self, i: usize, scores: &[f64]) {
        self.flat[i * self.d..(i + 1) * self.d].copy_from_slice(scores);
    }
}

fn assert_scores_bit_identical(ds: &Dataset, reference: &RowMajorRef, w: &[f64]) {
    let mut out = Vec::new();
    kernels::score_all_into(ds, w, &mut out);
    assert_eq!(out.len(), ds.len());
    for (i, o) in out.iter().enumerate() {
        let kernel = o.to_bits();
        let scalar = ds.score(w, i).to_bits();
        let legacy = reference.score(w, i).to_bits();
        assert_eq!(kernel, scalar, "kernel vs scalar at item {i}, w={w:?}");
        assert_eq!(kernel, legacy, "kernel vs row-major at item {i}, w={w:?}");
    }
}

fn query_fan(d: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..d)
                .map(|j| 0.05 + ((i * 31 + j * 17 + 7) % 97) as f64 / 97.0)
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------
// Kernels vs scalar vs row-major, on scoring and ranking
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw scoring: all three implementations produce the same bits.
    #[test]
    fn scoring_bit_identical(
        n in 1usize..300,
        d in 1usize..6,
        seed in 0u64..10_000,
        wseed in 0u64..1000,
    ) {
        let ds = generic::uniform(n, d, 0.5, seed);
        let reference = RowMajorRef::of(&ds);
        for s in 0..3u64 {
            let w: Vec<f64> = (0..d)
                .map(|j| 0.01 + ((wseed + s).wrapping_mul(31).wrapping_add(j as u64 * 7) % 89) as f64 / 89.0)
                .collect();
            assert_scores_bit_identical(&ds, &reference, &w);
        }
    }

    /// Full rankings and top-k prefixes match the row-major model, through
    /// both `Dataset::rank`/`top_k` and the workspace path.
    #[test]
    fn ranking_matches_row_major_model(
        n in 1usize..200,
        d in 1usize..5,
        seed in 0u64..10_000,
        k in 1usize..50,
    ) {
        let ds = generic::uniform(n, d, 0.9, seed);
        let reference = RowMajorRef::of(&ds);
        let mut ws = RankWorkspace::new();
        for w in query_fan(d, 5) {
            let legacy = reference.rank(&w);
            prop_assert_eq!(&ds.rank(&w), &legacy);
            prop_assert_eq!(ws.rank(&ds, &w), legacy.as_slice());
            let k_eff = k.min(n);
            prop_assert_eq!(&ds.top_k(&w, k_eff), &legacy[..k_eff]);
            let bounded = ws.rank_with_bound(&ds, &w, Some(k_eff)).to_vec();
            prop_assert_eq!(&bounded[..k_eff], &legacy[..k_eff]);
        }
    }

    /// The batch hyperplane side test agrees with per-item `total_cmp`
    /// against the same threshold.
    #[test]
    fn side_test_matches_total_cmp(
        n in 1usize..300,
        seed in 0u64..10_000,
        pivot in 0usize..300,
    ) {
        let ds = generic::uniform(n, 2, 0.0, seed);
        let w = [0.6, 0.8];
        let mut scores = Vec::new();
        kernels::score_all_into(&ds, &w, &mut scores);
        let threshold = scores[pivot % n];
        let mut sides = Vec::new();
        kernels::side_test_batch(&scores, threshold, &mut sides);
        for (i, &s) in sides.iter().enumerate() {
            let expect = match scores[i].total_cmp(&threshold) {
                std::cmp::Ordering::Greater => 1i8,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Less => -1,
            };
            prop_assert_eq!(s, expect, "item {}", i);
        }
    }

    /// Equivalence holds at every step of an update sequence: the mutable
    /// columnar surface (`insert_row` / `remove_row` / `rescore_row`)
    /// stays bit-identical to the same edits applied to the flat
    /// row-major buffer.
    #[test]
    fn updates_preserve_bit_identity(
        seed in 0u64..10_000,
        ops in prop::collection::vec((0u8..3, 0u32..1_000_000, 0u32..1_000_000), 1..12),
    ) {
        let d = 3;
        let mut ds = generic::uniform(25, d, 0.5, seed);
        let mut reference = RowMajorRef::of(&ds);
        let w = [0.9, 0.4, 0.2];
        for (kind, sel, sseed) in ops {
            let scores: Vec<f64> = (0..d)
                .map(|j| {
                    let h = u64::from(sseed)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(j as u64 * 0x85EB_CA6B);
                    (h % 1000) as f64 / 1000.0 + 0.001
                })
                .collect();
            match kind {
                0 => {
                    ds.insert_row(&scores, &[sel % 2]).unwrap();
                    reference.insert(&scores);
                }
                1 if ds.len() > 1 => {
                    let i = sel as usize % ds.len();
                    ds.remove_row(i).unwrap();
                    reference.remove(i);
                }
                _ => {
                    let i = sel as usize % ds.len();
                    ds.rescore_row(i, &scores).unwrap();
                    reference.rescore(i, &scores);
                }
            }
            assert_scores_bit_identical(&ds, &reference, &w);
            prop_assert_eq!(&ds.rank(&w), &reference.rank(&w));
        }
    }

    /// Both persisted layouts — columnar v2 and the legacy row-major v1
    /// stream — decode to datasets whose kernels score and rank
    /// bit-identically to the original.
    #[test]
    fn persistence_round_trips_preserve_bit_identity(
        n in 1usize..120,
        d in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let ds = generic::uniform(n, d, 0.7, seed);
        let reference = RowMajorRef::of(&ds);
        let from_v2 = decode_dataset(&encode_dataset(&ds)).unwrap();
        let from_v1 = decode_dataset(&encode_dataset_row_major(&ds)).unwrap();
        prop_assert_eq!(&from_v2, &ds);
        prop_assert_eq!(&from_v1, &ds);
        for w in query_fan(d, 3) {
            assert_scores_bit_identical(&from_v2, &reference, &w);
            assert_scores_bit_identical(&from_v1, &reference, &w);
            prop_assert_eq!(&from_v2.rank(&w), &reference.rank(&w));
            prop_assert_eq!(&from_v1.rank(&w), &reference.rank(&w));
        }
    }
}

// ---------------------------------------------------------------------
// All three backends, end-to-end
// ---------------------------------------------------------------------

/// Build a ranker on `ds` with the given strategy and assert that every
/// served top-k (materialized under the *answered* weights, i.e. ranked
/// through the kernelized workspace path inside the serving layer)
/// equals the row-major model's ranking prefix under those weights.
fn assert_backend_serves_row_major_prefixes(ds: &Dataset, strategy: Strategy) {
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(attr, 6).with_max_count(0, 4);
    let mut builder = FairRanker::builder(ds.clone(), Box::new(oracle)).strategy(strategy);
    if matches!(strategy, Strategy::MdApprox) {
        builder = builder.approx_options(BuildOptions {
            n_cells: 120,
            max_hyperplanes: Some(150),
            ..Default::default()
        });
    }
    let ranker = builder.build().unwrap();
    let reference = RowMajorRef::of(ds);
    let k = 6;
    for q in query_fan(ds.dim(), 10) {
        let sug = ranker
            .respond(&SuggestRequest::new(q.clone()).with_top_k(k))
            .unwrap();
        let top_k = sug.stats.top_k.as_deref().expect("top-k was requested");
        let legacy = reference.rank(&sug.weights);
        assert_eq!(
            top_k,
            &legacy[..k.min(ds.len())],
            "{strategy:?} diverged from the row-major model at {q:?}"
        );
    }
}

#[test]
fn twod_backend_matches_row_major_model() {
    let ds = generic::uniform(40, 2, 0.9, 11);
    assert_backend_serves_row_major_prefixes(&ds, Strategy::TwoD);
}

#[test]
fn md_exact_backend_matches_row_major_model() {
    let ds = generic::uniform(14, 3, 0.85, 13);
    assert_backend_serves_row_major_prefixes(&ds, Strategy::MdExact);
}

#[test]
fn md_approx_backend_matches_row_major_model() {
    let ds = generic::uniform(18, 3, 0.85, 17);
    assert_backend_serves_row_major_prefixes(&ds, Strategy::MdApprox);
}
