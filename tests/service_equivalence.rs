//! The async serving tier must be invisible in the answers: a
//! [`FairRankService`] serving concurrently submitted requests answers
//! **bit-identically** to the direct synchronous
//! [`FairRanker::respond_batch`] path on every backend — including while
//! live updates advance the dataset version (snapshot semantics), and
//! through a shutdown that drains pending requests. Also the regression
//! gate for consistent [`BackendStats`](fairrank::BackendStats) counter
//! snapshots under the service's worker pool.

use std::collections::HashMap;
use std::time::Duration;

use fairrank::approximate::BuildOptions;
use fairrank::md::SatRegionsOptions;
use fairrank::{DatasetUpdate, FairRanker, Strategy, SuggestRequest, UpdateOutcome};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::Proportionality;
use fairrank_geometry::HALF_PI;
use fairrank_serve::{runtime, FairRankService, ServiceError};

fn oracle_for(ds: &Dataset, kfrac: f64, cap_frac: f64) -> Proportionality {
    let attr = ds.type_attribute("group").unwrap();
    let k = ((ds.len() as f64) * kfrac).round().max(2.0) as usize;
    let cap = ((k as f64) * cap_frac).round().max(1.0) as usize;
    Proportionality::new(attr, k).with_max_count(0, cap)
}

fn build(ds: &Dataset, strategy: Strategy) -> FairRanker {
    let oracle = oracle_for(ds, 0.25, 0.6);
    FairRanker::builder(ds.clone(), Box::new(oracle))
        .strategy(strategy)
        .sat_regions_options(SatRegionsOptions {
            max_hyperplanes: Some(50),
            ..Default::default()
        })
        .approx_options(BuildOptions {
            n_cells: 120,
            max_hyperplanes: Some(80),
            ..Default::default()
        })
        .build()
        .unwrap()
}

/// Queries spanning the orthant, including axis-aligned boundaries.
fn fan(d: usize, count: usize) -> Vec<SuggestRequest> {
    let mut queries: Vec<Vec<f64>> = (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
            let mut q = vec![0.2 + 0.8 * t.sin(); d];
            q[0] = 0.2 + 1.5 * t.cos();
            q[i % d] += 0.9;
            q
        })
        .collect();
    let mut axis0 = vec![0.0; d];
    axis0[0] = 1.0;
    let mut axis1 = vec![0.0; d];
    axis1[d - 1] = 2.0;
    queries.push(axis0);
    queries.push(axis1);
    queries.into_iter().map(SuggestRequest::new).collect()
}

/// Concurrently submitted service answers must equal the direct
/// synchronous batch path, field for field (weights, verdict, version,
/// stats) — on every backend.
fn assert_service_matches_direct(ranker: FairRanker, reqs: &[SuggestRequest]) {
    let direct = ranker.snapshot().respond_batch(reqs).unwrap();
    let service = FairRankService::builder(ranker)
        .workers(3)
        .max_batch(8)
        .max_delay(Duration::from_micros(200))
        .build();
    std::thread::scope(|scope| {
        let chunk = reqs.len().div_ceil(4).max(1);
        for (c, expected) in reqs.chunks(chunk).zip(direct.chunks(chunk)) {
            let service = &service;
            scope.spawn(move || {
                // Mix the async future path and the blocking path.
                let futures: Vec<_> = c
                    .iter()
                    .map(|r| service.submit(r.clone()).unwrap())
                    .collect();
                for ((req, fut), want) in c.iter().zip(futures).zip(expected) {
                    let got = runtime::block_on(fut).unwrap();
                    assert_eq!(&got, want, "service diverged from direct at {req:?}");
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.submitted, reqs.len() as u64);
    assert_eq!(stats.completed, reqs.len() as u64);
    service.shutdown();
}

#[test]
fn service_matches_direct_twod() {
    let ds = generic::uniform(45, 2, 0.9, 71);
    assert_service_matches_direct(build(&ds, Strategy::TwoD), &fan(2, 40));
}

#[test]
fn service_matches_direct_md_exact() {
    let ds = generic::uniform(16, 3, 0.9, 72);
    assert_service_matches_direct(build(&ds, Strategy::MdExact), &fan(3, 18));
}

#[test]
fn service_matches_direct_md_approx() {
    let ds = generic::uniform(30, 3, 0.85, 73);
    assert_service_matches_direct(build(&ds, Strategy::MdApprox), &fan(3, 24));
}

/// Interleaved updates, deterministic half: after each update the
/// service's answers are bit-identical to a direct ranker at the same
/// version, and pre-update snapshots stay frozen.
#[test]
fn interleaved_updates_match_per_version_references() {
    let ds = generic::uniform(40, 2, 0.9, 81);
    let ranker = build(&ds, Strategy::TwoD);
    let service = FairRankService::builder(ranker)
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100))
        .build();
    let reqs = fan(2, 16);
    let updates = vec![
        DatasetUpdate::Insert {
            scores: vec![0.55, 0.8],
            groups: vec![0],
        },
        DatasetUpdate::Rescore {
            item: 5,
            scores: vec![0.3, 0.9],
        },
        DatasetUpdate::Remove { item: 17 },
    ];
    let mut references: HashMap<u64, FairRanker> = HashMap::new();
    references.insert(0, service.snapshot());
    for (round, update) in updates.into_iter().enumerate() {
        for req in &reqs {
            let got = service.suggest(req.clone()).unwrap();
            assert_eq!(got.version, round as u64);
            let want = references[&got.version].respond(req).unwrap();
            assert_eq!(got, want, "diverged at version {} {req:?}", got.version);
        }
        service.update(update).unwrap();
        references.insert(service.version(), service.snapshot());
    }
    // Old references still answer from their frozen generation: the
    // copy-on-write swap never mutated them.
    assert_eq!(references[&0].dataset().len(), 40);
    assert_eq!(references[&0].version(), 0);
    let final_version = service.version();
    for req in &reqs {
        let got = service.suggest(req.clone()).unwrap();
        assert_eq!(got.version, final_version);
        assert_eq!(got, references[&final_version].respond(req).unwrap());
    }
    service.shutdown();
}

/// Interleaved updates, concurrent half: submitters race a live updater;
/// whatever generation served each request, the answer must match the
/// per-version reference exactly — no torn reads, no blocking.
#[test]
fn concurrent_updates_preserve_snapshot_semantics() {
    let ds = generic::uniform(35, 2, 0.9, 83);
    let ranker = build(&ds, Strategy::TwoD);
    let service = FairRankService::builder(ranker)
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100))
        .build();
    let rounds = 6u64;
    // Pre-compute nothing: collect per-version references as the updater
    // publishes them (version → frozen snapshot).
    let references = std::sync::Mutex::new(HashMap::from([(0u64, service.snapshot())]));
    let reqs = fan(2, 12);
    std::thread::scope(|scope| {
        let service = &service;
        let references = &references;
        let updater = scope.spawn(move || {
            for i in 0..rounds {
                let outcome = service
                    .update(DatasetUpdate::Insert {
                        scores: vec![0.3 + 0.05 * i as f64, 0.7],
                        groups: vec![(i % 2) as u32],
                    })
                    .unwrap();
                assert_ne!(outcome, UpdateOutcome::Noop);
                references
                    .lock()
                    .unwrap()
                    .insert(service.version(), service.snapshot());
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        for _ in 0..3 {
            let reqs = reqs.clone();
            scope.spawn(move || {
                for req in reqs.iter().cycle().take(60) {
                    let got = service.suggest(req.clone()).unwrap();
                    // The updater publishes the reference right after the
                    // swap; a request served in that window waits it out.
                    let reference = loop {
                        if let Some(r) = references.lock().unwrap().get(&got.version) {
                            break r.snapshot();
                        }
                        std::thread::yield_now();
                    };
                    assert_eq!(got, reference.respond(req).unwrap());
                }
            });
        }
        updater.join().unwrap();
    });
    assert_eq!(service.version(), rounds);
    service.shutdown();
}

/// Shutdown with requests still queued: every accepted request is
/// answered (correctly) before the pool exits; the batching deadline is
/// not waited out.
#[test]
fn shutdown_drains_and_answers_pending_requests() {
    let ds = generic::uniform(30, 2, 0.9, 85);
    let ranker = build(&ds, Strategy::TwoD);
    let reference = ranker.snapshot();
    let service = FairRankService::builder(ranker)
        .workers(1)
        .max_batch(128)
        .max_delay(Duration::from_secs(30))
        .build();
    let reqs = fan(2, 20);
    let futures: Vec<_> = reqs
        .iter()
        .map(|r| service.submit(r.clone()).unwrap())
        .collect();
    let start = std::time::Instant::now();
    service.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drain must not wait out the 30 s batching deadline"
    );
    for (req, fut) in reqs.iter().zip(futures) {
        let got = fut.wait().expect("drained request must be answered");
        assert_eq!(got, reference.respond(req).unwrap());
    }
}

/// Overload backpressure is the signal — and accepted requests still
/// answer identically to the direct path.
#[test]
fn overloaded_submissions_shed_accepted_ones_answer() {
    let ds = generic::uniform(30, 2, 0.9, 87);
    let ranker = build(&ds, Strategy::TwoD);
    let reference = ranker.snapshot();
    let service = FairRankService::builder(ranker)
        .workers(1)
        .max_batch(256)
        .max_delay(Duration::from_millis(100))
        .queue_capacity(3)
        .build();
    let reqs = fan(2, 40);
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for req in &reqs {
        match service.try_suggest(req.clone()) {
            Ok(fut) => accepted.push((req.clone(), fut)),
            Err(ServiceError::Overloaded { capacity: 3, .. }) => shed += 1,
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(
        shed > 0,
        "capacity-3 queue must shed some of 40 submissions"
    );
    assert_eq!(service.stats().rejected, shed as u64);
    for (req, fut) in accepted {
        assert_eq!(fut.wait().unwrap(), reference.respond(&req).unwrap());
    }
    service.shutdown();
}

/// Regression (PR 5 bugfix): `BackendStats` update/rebuild counters are
/// snapshotted in one consistent pass. With the exact-regions backend at
/// `rebuild_every = 1` every update commits `updates += 1` and
/// `rebuilds += 1` *atomically together*, so a stats reader racing the
/// writer through the service's worker pool must never observe a pair
/// where the two counters disagree — the exact interleaving the old
/// two-plain-fields implementation allowed.
#[test]
fn backend_stats_snapshots_are_consistent_under_concurrent_serving() {
    let ds = generic::uniform(14, 3, 0.9, 91);
    let ranker = build(&ds, Strategy::MdExact);
    let service = FairRankService::builder(ranker)
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100))
        .build();
    let reqs = fan(3, 8);
    let rounds = 8u64;
    std::thread::scope(|scope| {
        let service = &service;
        let updater = scope.spawn(move || {
            for i in 0..rounds {
                service
                    .update(DatasetUpdate::Rescore {
                        item: (i % 10) as u32,
                        scores: vec![0.2 + 0.07 * i as f64, 0.6, 0.5],
                    })
                    .unwrap();
            }
        });
        // Stats pollers race the updater; every snapshot must be a
        // committed (updates == rebuilds) pair, monotonically advancing.
        for _ in 0..2 {
            scope.spawn(move || {
                let mut last = (0u64, 0u64);
                while !updater_done(service, rounds) {
                    let stats = service.backend_stats();
                    assert_eq!(
                        stats.updates, stats.rebuilds,
                        "torn counter snapshot: every exact-backend update \
                         rebuilds, so the pair must always agree"
                    );
                    assert!(
                        (stats.updates, stats.rebuilds) >= last,
                        "counters went backwards"
                    );
                    last = (stats.updates, stats.rebuilds);
                }
            });
        }
        // Keep the worker pool busy while the counters churn.
        for req in reqs.iter().cycle().take(40) {
            let _ = service.suggest(req.clone()).unwrap();
        }
        updater.join().unwrap();
    });
    let final_stats = service.backend_stats();
    assert_eq!(final_stats.updates, rounds);
    assert_eq!(final_stats.rebuilds, rounds);
    service.shutdown();
}

fn updater_done(service: &FairRankService, rounds: u64) -> bool {
    service.backend_stats().updates >= rounds
}

/// The region-identity answer cache (enabled by default) must be
/// invisible in the answers on every backend: serving the same repeated
/// request stream through a cache-enabled and a cache-disabled service
/// yields bit-identical suggestions. The deeper cached-path gates
/// (certified builds, updates, races) live in `cache_equivalence.rs` —
/// this one pins the default service configuration used everywhere else
/// in this suite.
#[test]
fn cached_and_uncached_services_answer_bit_identically() {
    let cases = [
        (Strategy::TwoD, generic::uniform(45, 2, 0.9, 95), 2),
        (Strategy::MdExact, generic::uniform(16, 3, 0.9, 96), 3),
        (Strategy::MdApprox, generic::uniform(30, 3, 0.85, 97), 3),
    ];
    for (strategy, ds, d) in cases {
        let ranker = build(&ds, strategy);
        let reqs = fan(d, 16);
        let cached = FairRankService::builder(ranker.snapshot())
            .workers(2)
            .max_batch(4)
            .max_delay(Duration::from_micros(100))
            .build();
        let uncached = FairRankService::builder(ranker)
            .workers(2)
            .max_batch(4)
            .max_delay(Duration::from_micros(100))
            .cache(false)
            .build();
        for req in reqs.iter().cycle().take(reqs.len() * 3) {
            assert_eq!(
                cached.suggest(req.clone()).unwrap(),
                uncached.suggest(req.clone()).unwrap(),
                "cache changed the answer for {strategy:?} at {req:?}"
            );
        }
        assert!(cached.stats().cache.is_some());
        assert!(uncached.stats().cache.is_none());
        cached.shutdown();
        uncached.shutdown();
    }
}
