//! Integration: datasets → oracle → 2DRAYSWEEP → 2DONLINE, end to end
//! (paper §3 pipeline).

use fairrank::twod::{online_2d, ray_sweep, ray_sweep_incremental, TwoDAnswer};
use fairrank::{FairRanker, KnownFairness, SuggestRequest};
use fairrank_datasets::synthetic::{compas, generic};
use fairrank_fairness::{FairnessOracle, Proportionality};
use fairrank_geometry::HALF_PI;

/// COMPAS-like 2-D setup used by the paper's §6.2 region-layout
/// experiments: age (inverted) and juv_other_count.
fn compas_2d(n: usize) -> fairrank_datasets::Dataset {
    let full = compas::generate(&compas::CompasConfig {
        n,
        ..Default::default()
    });
    // age = attr 5, juv_other_count = attr 1.
    full.project(&[5, 1]).unwrap()
}

#[test]
fn compas_age_race_constraint_end_to_end() {
    let ds = compas_2d(400);
    let race = ds.type_attribute("race").unwrap();
    let k = 100.min(ds.len());
    let oracle = Proportionality::new(race, k).with_max_count(0, 60);

    let sweep = ray_sweep(&ds, &oracle).unwrap();
    // The index must agree with direct evaluation for a fan of queries.
    for step in 0..60 {
        let theta = (step as f64 + 0.5) / 60.0 * HALF_PI;
        let w = [theta.cos(), theta.sin()];
        let truth = oracle.is_satisfactory(&ds.rank(&w));
        let near_boundary = sweep
            .intervals
            .as_slice()
            .iter()
            .any(|&(s, e)| (theta - s).abs() < 1e-6 || (theta - e).abs() < 1e-6);
        if !near_boundary {
            assert_eq!(sweep.intervals.contains(theta), truth, "θ = {theta}");
        }
    }

    // Online answers are fair and minimal against the interval index.
    for step in 0..20 {
        let theta = (step as f64 + 0.5) / 20.0 * HALF_PI;
        let w = [theta.cos(), theta.sin()];
        match online_2d(&sweep.intervals, &w).unwrap() {
            TwoDAnswer::AlreadyFair => {
                assert!(oracle.is_satisfactory(&ds.rank(&w)));
            }
            TwoDAnswer::Suggestion { weights, distance } => {
                assert!(oracle.is_satisfactory(&ds.rank(&weights)));
                assert!(distance > 0.0 && distance <= HALF_PI);
            }
            TwoDAnswer::Infeasible => {
                assert!(sweep.intervals.is_empty());
            }
        }
    }
}

#[test]
fn incremental_and_blackbox_paths_agree_on_compas() {
    let ds = compas_2d(250);
    let race = ds.type_attribute("race").unwrap();
    let oracle = Proportionality::new(race, 75).with_max_count(0, 45);

    let black = ray_sweep(&ds, &oracle).unwrap();
    let inc = ray_sweep_incremental(&ds, &[&oracle]).unwrap();
    assert_eq!(
        black.intervals.as_slice().len(),
        inc.intervals.as_slice().len()
    );
    for (a, b) in black
        .intervals
        .as_slice()
        .iter()
        .zip(inc.intervals.as_slice())
    {
        assert!((a.0 - b.0).abs() < 1e-9, "{a:?} vs {b:?}");
        assert!((a.1 - b.1).abs() < 1e-9, "{a:?} vs {b:?}");
    }
    // The incremental path skips all black-box calls.
    assert_eq!(inc.oracle_calls, 0);
    assert!(black.oracle_calls as usize >= black.sector_count);
}

#[test]
fn ranker_suggestions_are_fair_and_norm_preserving() {
    let ds = generic::uniform(150, 2, 0.9, 1234);
    let group = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(group, 30).with_max_count(0, 16);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
        .build()
        .unwrap();

    let mut suggestions = 0;
    for step in 0..40 {
        let theta = (step as f64 + 0.5) / 40.0 * HALF_PI;
        let scale = 1.0 + step as f64 * 0.25;
        let q = [scale * theta.cos(), scale * theta.sin()];
        let sug = ranker.respond(&SuggestRequest::new(q)).unwrap();
        match sug.fairness {
            KnownFairness::AlreadyFair => {
                assert!(oracle.is_satisfactory(&ds.rank(&q)));
            }
            KnownFairness::Suggested { distance } => {
                suggestions += 1;
                assert!(oracle.is_satisfactory(&ds.rank(&sug.weights)));
                let rq: f64 = q.iter().map(|v| v * v).sum::<f64>().sqrt();
                let rw: f64 = sug.weights.iter().map(|v| v * v).sum::<f64>().sqrt();
                assert!((rq - rw).abs() < 1e-9, "norm must be preserved");
                assert!(distance > 0.0);
            }
            KnownFairness::Infeasible => panic!("this setup has satisfactory regions"),
        }
    }
    assert!(suggestions > 0, "bias should make some queries unfair");
}

#[test]
fn suggestion_distance_is_minimal_against_dense_scan() {
    // The interesting setup is a *narrow but non-empty* satisfactory
    // region (most probe queries get a suggestion, at least one angle is
    // fair). Instead of hard-coding one RNG-dependent seed — which breaks
    // the moment the vendored generator is swapped back to upstream
    // ChaCha12 — scan a seed range and test the first setup exhibiting
    // the property. The minimality assertion itself holds for *every*
    // dataset; the scan only guarantees the test exercises the
    // suggestion path rather than vacuously passing on AlreadyFair or
    // Infeasible.
    const QUERY_FAN: [f64; 5] = [0.05, 0.4, 0.9, 1.3, 1.55];
    let coarse_sat = |ds: &fairrank_datasets::Dataset, oracle: &Proportionality| {
        (0..64)
            .filter(|&s| {
                let theta = (f64::from(s) + 0.5) / 64.0 * HALF_PI;
                oracle.is_satisfactory(&ds.rank(&[theta.cos(), theta.sin()]))
            })
            .count()
    };
    let (ds, oracle) = (0..200u64)
        .find_map(|seed| {
            let ds = generic::uniform(80, 2, 0.95, seed);
            let group = ds.type_attribute("group").unwrap();
            let oracle = Proportionality::new(group, 16).with_max_count(0, 8);
            // Narrow: satisfied on some rays but at most a quarter of them —
            // and at least one of the fan queries below must itself be
            // unfair, so the suggestion (minimality) branch genuinely runs.
            let sat = coarse_sat(&ds, &oracle);
            let fan_has_unfair = QUERY_FAN
                .iter()
                .any(|&t| !oracle.is_satisfactory(&ds.rank(&[t.cos(), t.sin()])));
            ((1..=16).contains(&sat) && fan_has_unfair).then_some((ds, oracle))
        })
        .expect("some seed in 0..200 must yield a narrow satisfactory region");
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
        .build()
        .unwrap();

    // Dense truth: satisfactory angles.
    let mut sat_angles = Vec::new();
    for step in 0..4000 {
        let theta = (step as f64 + 0.5) / 4000.0 * HALF_PI;
        if oracle.is_satisfactory(&ds.rank(&[theta.cos(), theta.sin()])) {
            sat_angles.push(theta);
        }
    }
    assert!(!sat_angles.is_empty());

    let mut suggested = 0usize;
    for q_theta in QUERY_FAN {
        let q = [q_theta.cos(), q_theta.sin()];
        match ranker.respond(&SuggestRequest::new(q)).unwrap().fairness {
            KnownFairness::AlreadyFair => {}
            KnownFairness::Suggested { distance } => {
                suggested += 1;
                let optimal = sat_angles
                    .iter()
                    .map(|t| (t - q_theta).abs())
                    .fold(f64::INFINITY, f64::min);
                // The dense scan has ~π/8000 resolution.
                assert!(
                    distance <= optimal + 1e-3,
                    "query θ={q_theta}: suggested {distance} vs dense optimum {optimal}"
                );
            }
            KnownFairness::Infeasible => panic!("satisfiable"),
        }
    }
    // The scan required an unfair fan query, so the minimality branch
    // genuinely ran.
    assert!(suggested >= 1, "no query exercised the suggestion path");
}

/// Tie-break regression (duplicated scores straddling k): every ranking
/// path — the full sort ([`Dataset::rank`]), the partial top-k selection
/// ([`RankWorkspace::rank_with_bound`]), and the sweep/maintenance paths
/// that update rankings incrementally across crossing events — must
/// resolve score ties identically (descending `total_cmp`, then
/// ascending item id). The dataset puts an exact 3-way tie at ranks 3–5
/// with k = 4, so the tie *straddles* the top-k boundary at every angle
/// and any comparator disagreement changes top-k membership.
#[test]
fn tied_scores_straddling_k_agree_across_ranking_paths() {
    use fairrank_datasets::{Dataset, RankWorkspace};
    use fairrank_fairness::FnOracle;

    let rows = vec![
        vec![0.9, 0.9],   // 0: top everywhere
        vec![0.6, 0.6],   // 1 ┐
        vec![0.6, 0.6],   // 2 ├ exact 3-way tie straddling k = 4
        vec![0.6, 0.6],   // 3 ┘
        vec![0.65, 0.52], // 4: crosses the tied block mid-sweep
        vec![0.52, 0.65], // 5: its mirror
        vec![0.2, 0.2],   // 6
        vec![0.1, 0.4],   // 7
    ];
    let ds = Dataset::from_rows(vec!["x".into(), "y".into()], &rows).unwrap();
    let k = 4;

    // Path 1 vs path 2: the partial top-k prefix equals the full sort's
    // prefix at every angle, for every bound around the tied block.
    let mut ws = RankWorkspace::new();
    for step in 0..48 {
        let theta = (step as f64 + 0.5) / 48.0 * HALF_PI;
        let w = [theta.cos(), theta.sin()];
        let full = ds.rank(&w);
        for bound in [1usize, 3, 4, 5, 8] {
            let partial = ws.rank_with_bound(&ds, &w, Some(bound));
            assert_eq!(
                &partial[..bound],
                &full[..bound],
                "partial top-{bound} diverged from full sort at θ = {theta}"
            );
        }
    }

    // Path 3: the sweep's incrementally maintained ranking. The oracle's
    // verdict depends on exactly which tied ids make the top-k cut, so a
    // single mis-resolved tie flips intervals. Compare against direct
    // (full-sort) evaluation across the fan.
    let oracle = FnOracle::new("tie-sensitive", move |ranking: &[u32]| {
        let top = &ranking[..k];
        top.contains(&1) && top.contains(&4)
    });
    let sweep = ray_sweep(&ds, &oracle).unwrap();
    for step in 0..96 {
        let theta = (step as f64 + 0.5) / 96.0 * HALF_PI;
        let w = [theta.cos(), theta.sin()];
        let truth = oracle.is_satisfactory(&ds.rank(&w));
        let near_boundary = sweep
            .intervals
            .as_slice()
            .iter()
            .any(|&(s, e)| (theta - s).abs() < 1e-6 || (theta - e).abs() < 1e-6);
        if !near_boundary {
            assert_eq!(
                sweep.intervals.contains(theta),
                truth,
                "sweep diverged from full-sort evaluation at θ = {theta}"
            );
        }
    }
    assert!(
        !sweep.intervals.is_empty() && sweep.intervals.measure() < HALF_PI - 1e-6,
        "the tie-sensitive oracle must produce a non-trivial region layout"
    );

    // Path 3, incremental-maintenance half: inserting an item that joins
    // the tied block exercises the maintenance ranking walk
    // (`rank_steps`) right at the tie. The maintained index must answer
    // exactly like an index rebuilt from scratch on the updated dataset.
    let mut ds_grouped = ds.clone();
    ds_grouped
        .add_type_attribute(
            "group",
            vec!["a".into(), "b".into()],
            vec![0, 0, 1, 0, 1, 1, 0, 1],
        )
        .unwrap();
    let attr = ds_grouped.type_attribute("group").unwrap().clone();
    let build = |ds: &Dataset| {
        FairRanker::builder(
            ds.clone(),
            Box::new(Proportionality::new(&attr, k).with_max_count(0, 2)),
        )
        .strategy(fairrank::Strategy::TwoD)
        .build()
        .unwrap()
    };
    let mut maintained = build(&ds_grouped);
    let outcome = maintained
        .update(fairrank::DatasetUpdate::Insert {
            scores: vec![0.6, 0.6], // a fourth member of the tied block
            groups: vec![1],
        })
        .unwrap();
    assert_eq!(outcome, fairrank::UpdateOutcome::Incremental);
    let rebuilt = build(maintained.dataset());
    for step in 0..48 {
        let theta = (step as f64 + 0.5) / 48.0 * HALF_PI;
        let req = SuggestRequest::new(vec![theta.cos(), theta.sin()]);
        let got = maintained.respond(&req).unwrap();
        let want = rebuilt.respond(&req).unwrap();
        assert_eq!(
            (&got.weights, &got.fairness),
            (&want.weights, &want.fairness),
            "maintained index diverged from rebuild at θ = {theta}"
        );
    }
}
