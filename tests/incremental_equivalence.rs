//! Incremental-vs-rebuild equivalence: for random update sequences
//! (insert / remove / rescore) against all three backends, a ranker
//! maintained through [`FairRanker::update`] answers `respond` queries
//! **element-wise identically** to a ranker rebuilt from scratch on the
//! final dataset — bit-identical weights and distances, not just "close".
//!
//! This is the contract that makes live updates trustworthy: incremental
//! maintenance is an optimization, never a semantic.

use proptest::prelude::*;

use fairrank::approximate::BuildOptions;
use fairrank::md::SatRegionsOptions;
use fairrank::{
    DatasetUpdate, FairRanker, KnownFairness, Strategy, SuggestRequest, Suggestion, UpdateOutcome,
};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::Proportionality;
use fairrank_geometry::HALF_PI;

/// A fairness model whose `k` never hits the clamp under our update
/// sequences (so progressive oracle re-binding equals one final re-bind).
fn oracle_for(ds: &Dataset, k: usize, cap: usize) -> Proportionality {
    let attr = ds.type_attribute("group").unwrap();
    Proportionality::new(attr, k).with_max_count(0, cap)
}

/// Deterministic query fan across the positive orthant.
fn query_fan(d: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
            let mut q = vec![0.3 + t.sin(); d];
            q[0] = 0.3 + t.cos();
            q[i % d] += 0.9;
            q
        })
        .collect()
}

/// Compressed update description drawn by proptest: (kind, item selector,
/// score seed, group). Materialized against the live dataset so item ids
/// are always in range.
type UpdateSpec = (u8, u32, u32, u32);

fn materialize(spec: &UpdateSpec, ds: &Dataset, d: usize) -> DatasetUpdate {
    let (kind, item_sel, score_seed, group) = *spec;
    let scores: Vec<f64> = (0..d)
        .map(|j| {
            let h = u64::from(score_seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(j as u64 * 0x85EB_CA6B);
            (h % 1000) as f64 / 1000.0 + 0.001
        })
        .collect();
    match kind % 3 {
        0 => DatasetUpdate::Insert {
            scores,
            groups: vec![group % 2],
        },
        1 => DatasetUpdate::Remove {
            item: item_sel % ds.len() as u32,
        },
        _ => DatasetUpdate::Rescore {
            item: item_sel % ds.len() as u32,
            scores,
        },
    }
}

/// Drive `live` through the updates, then compare against a from-scratch
/// ranker on the final dataset built by `rebuild`.
fn assert_equivalent(
    mut live: FairRanker,
    specs: &[UpdateSpec],
    d: usize,
    rebuild: impl Fn(Dataset) -> FairRanker,
) {
    for spec in specs {
        let update = materialize(spec, live.dataset(), d);
        live.update(update).expect("update applies");
    }
    live.flush_updates().expect("flush applies");
    let scratch = rebuild(live.dataset().clone());
    for q in query_fan(d, 40) {
        let req = SuggestRequest::new(q.clone());
        let a = live.respond(&req).unwrap();
        let b = scratch.respond(&req).unwrap();
        // The live ranker's version counts its updates; the scratch build
        // starts at 0 — compare the served answers, not the epoch stamp.
        assert_eq!(a.weights, b.weights, "divergence at {q:?} after {specs:?}");
        assert_eq!(
            a.fairness, b.fairness,
            "divergence at {q:?} after {specs:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 2-D intervals: true in-place maintenance (merged event lists,
    /// verdict-reuse certificates) must match a fresh 2DRAYSWEEP.
    #[test]
    fn twod_incremental_matches_rebuild(
        seed in 0u64..1000,
        specs in prop::collection::vec((0u8..6, 0u32..1_000_000, 0u32..1_000_000, 0u32..1_000_000), 1..6),
    ) {
        let ds = generic::uniform(40, 2, 0.9, seed);
        let k = 8;
        let live = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, k, 4)))
            .strategy(Strategy::TwoD)
            .build()
            .unwrap();
        assert_equivalent(live, &specs, 2, |final_ds| {
            let oracle = oracle_for(&final_ds, k, 4);
            FairRanker::builder(final_ds, Box::new(oracle))
                .strategy(Strategy::TwoD)
                .build()
                .unwrap()
        });
    }

    /// Approximate grid: delta-marked re-search + probe replay +
    /// recoloring must match a fresh §5 build, cell for cell.
    #[test]
    fn approx_incremental_matches_rebuild(
        seed in 0u64..1000,
        specs in prop::collection::vec((0u8..6, 0u32..1_000_000, 0u32..1_000_000, 0u32..1_000_000), 1..5),
    ) {
        let ds = generic::uniform(18, 3, 0.85, seed);
        let k = 5;
        let opts = BuildOptions {
            n_cells: 120,
            // No hyperplane truncation: the incremental path requires it
            // (truncation makes delta marking unsound and falls back to
            // full rebuilds, which the fallback test below covers).
            max_hyperplanes: None,
            ..Default::default()
        };
        let live = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, k, 3)))
            .strategy(Strategy::MdApprox)
            .approx_options(opts.clone())
            .build()
            .unwrap();
        assert_equivalent(live, &specs, 3, |final_ds| {
            let oracle = oracle_for(&final_ds, k, 3);
            FairRanker::builder(final_ds, Box::new(oracle))
                .strategy(Strategy::MdApprox)
                .approx_options(opts.clone())
                .build()
                .unwrap()
        });
    }

    /// Exact regions: the coalesced-rebuild policy (threshold 1 here)
    /// must match a fresh SATREGIONS arrangement.
    #[test]
    fn md_exact_matches_rebuild(
        seed in 0u64..1000,
        specs in prop::collection::vec((0u8..6, 0u32..1_000_000, 0u32..1_000_000, 0u32..1_000_000), 1..4),
    ) {
        let ds = generic::uniform(12, 3, 0.85, seed);
        let k = 4;
        let opts = SatRegionsOptions {
            max_hyperplanes: Some(40),
            ..Default::default()
        };
        let live = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, k, 2)))
            .strategy(Strategy::MdExact)
            .sat_regions_options(opts.clone())
            .build()
            .unwrap();
        assert_equivalent(live, &specs, 3, |final_ds| {
            let oracle = oracle_for(&final_ds, k, 2);
            FairRanker::builder(final_ds, Box::new(oracle))
                .strategy(Strategy::MdExact)
                .sat_regions_options(opts.clone())
                .build()
                .unwrap()
        });
    }
}

#[test]
fn twod_updates_report_incremental() {
    let ds = generic::uniform(30, 2, 0.9, 7);
    let mut ranker = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, 6, 3)))
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    assert_eq!(ranker.version(), 0);
    let outcome = ranker
        .update(DatasetUpdate::Insert {
            scores: vec![0.4, 0.7],
            groups: vec![1],
        })
        .unwrap();
    assert_eq!(outcome, UpdateOutcome::Incremental);
    assert_eq!(ranker.version(), 1);
    assert_eq!(ranker.dataset().len(), 31);
    let stats = ranker.backend_stats();
    assert_eq!(stats.updates, 1);
    assert_eq!(stats.rebuilds, 0);

    let outcome = ranker.update(DatasetUpdate::Remove { item: 3 }).unwrap();
    assert_eq!(outcome, UpdateOutcome::Incremental);
    let outcome = ranker
        .update(DatasetUpdate::Rescore {
            item: 5,
            scores: vec![0.9, 0.1],
        })
        .unwrap();
    assert_eq!(outcome, UpdateOutcome::Incremental);
    assert_eq!(ranker.version(), 3);
}

#[test]
fn twod_loaded_ranker_heals_on_first_update() {
    // A persisted 2-D index has no sweep state: the first update pays one
    // rebuild, after which maintenance is incremental again.
    let ds = generic::uniform(30, 2, 0.9, 11);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, 6, 3)))
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    let bytes = ranker.to_bytes();
    let mut reloaded =
        FairRanker::from_bytes(&bytes, ds.clone(), Box::new(oracle_for(&ds, 6, 3))).unwrap();
    let insert = DatasetUpdate::Insert {
        scores: vec![0.2, 0.9],
        groups: vec![0],
    };
    assert_eq!(
        reloaded.update(insert.clone()).unwrap(),
        UpdateOutcome::Rebuilt
    );
    assert_eq!(
        reloaded
            .update(DatasetUpdate::Rescore {
                item: 2,
                scores: vec![0.6, 0.6]
            })
            .unwrap(),
        UpdateOutcome::Incremental
    );
    // And the healed ranker matches a scratch build.
    let scratch_oracle = oracle_for(reloaded.dataset(), 6, 3);
    let scratch = FairRanker::builder(reloaded.dataset().clone(), Box::new(scratch_oracle))
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    for q in query_fan(2, 25) {
        let req = SuggestRequest::new(q);
        let (a, b) = (
            reloaded.respond(&req).unwrap(),
            scratch.respond(&req).unwrap(),
        );
        assert_eq!((a.weights, a.fairness), (b.weights, b.fairness));
    }
}

#[test]
fn md_exact_coalesces_and_flushes() {
    let ds = generic::uniform(12, 3, 0.85, 13);
    let opts = SatRegionsOptions {
        max_hyperplanes: Some(40),
        ..Default::default()
    };
    let mut ranker = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, 4, 2)))
        .strategy(Strategy::MdExact)
        .sat_regions_options(opts.clone())
        .exact_rebuild_every(3)
        .build()
        .unwrap();
    let insert = |s: f64| DatasetUpdate::Insert {
        scores: vec![s, 1.0 - s, 0.5],
        groups: vec![1],
    };
    assert!(!ranker.backend().has_pending_updates());
    assert_eq!(
        ranker.update(insert(0.3)).unwrap(),
        UpdateOutcome::Deferred { pending: 1 }
    );
    assert!(ranker.backend().has_pending_updates());
    assert_eq!(
        ranker.update(insert(0.6)).unwrap(),
        UpdateOutcome::Deferred { pending: 2 }
    );
    // Third update crosses the threshold: one rebuild lands all three.
    assert_eq!(ranker.update(insert(0.8)).unwrap(), UpdateOutcome::Rebuilt);
    assert!(!ranker.backend().has_pending_updates());
    assert_eq!(ranker.flush_updates().unwrap(), UpdateOutcome::Noop);
    // A *shared* ranker (snapshots outstanding) with nothing pending
    // reports Noop without forking the backend.
    let _pin = ranker.snapshot();
    assert_eq!(ranker.flush_updates().unwrap(), UpdateOutcome::Noop);
    drop(_pin);

    // A deferred tail flushes on demand and then matches scratch.
    assert_eq!(
        ranker.update(insert(0.45)).unwrap(),
        UpdateOutcome::Deferred { pending: 1 }
    );
    assert_eq!(ranker.flush_updates().unwrap(), UpdateOutcome::Rebuilt);
    let scratch_oracle = oracle_for(ranker.dataset(), 4, 2);
    let scratch = FairRanker::builder(ranker.dataset().clone(), Box::new(scratch_oracle))
        .strategy(Strategy::MdExact)
        .sat_regions_options(opts)
        .build()
        .unwrap();
    for q in query_fan(3, 25) {
        let req = SuggestRequest::new(q);
        let (a, b) = (
            ranker.respond(&req).unwrap(),
            scratch.respond(&req).unwrap(),
        );
        assert_eq!((a.weights, a.fairness), (b.weights, b.fairness));
    }
}

#[test]
fn approx_truncated_build_falls_back_to_rebuild() {
    // With max_hyperplanes set, delta marking is unsound, so the grid
    // backend must take the (still bit-identical) full-rebuild path.
    let ds = generic::uniform(20, 3, 0.85, 17);
    let opts = BuildOptions {
        n_cells: 100,
        max_hyperplanes: Some(60),
        ..Default::default()
    };
    let mut ranker = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, 5, 3)))
        .strategy(Strategy::MdApprox)
        .approx_options(opts.clone())
        .build()
        .unwrap();
    assert_eq!(
        ranker
            .update(DatasetUpdate::Insert {
                scores: vec![0.5, 0.4, 0.6],
                groups: vec![0],
            })
            .unwrap(),
        UpdateOutcome::Rebuilt
    );
    let scratch_oracle = oracle_for(ranker.dataset(), 5, 3);
    let scratch = FairRanker::builder(ranker.dataset().clone(), Box::new(scratch_oracle))
        .strategy(Strategy::MdApprox)
        .approx_options(opts)
        .build()
        .unwrap();
    for q in query_fan(3, 25) {
        let req = SuggestRequest::new(q);
        let (a, b) = (
            ranker.respond(&req).unwrap(),
            scratch.respond(&req).unwrap(),
        );
        assert_eq!((a.weights, a.fairness), (b.weights, b.fairness));
    }
}

#[test]
fn invalid_updates_leave_ranker_untouched() {
    let ds = generic::uniform(25, 2, 0.9, 19);
    let mut ranker = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, 6, 3)))
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    let before: Vec<Suggestion> = query_fan(2, 10)
        .into_iter()
        .map(|q| ranker.respond(&SuggestRequest::new(q)).unwrap())
        .collect();
    for bad in [
        DatasetUpdate::Insert {
            scores: vec![0.5],
            groups: vec![0],
        },
        DatasetUpdate::Insert {
            scores: vec![0.5, 0.5],
            groups: vec![9],
        },
        DatasetUpdate::Remove { item: 99 },
        DatasetUpdate::Rescore {
            item: 0,
            scores: vec![f64::NAN, 1.0],
        },
    ] {
        assert!(ranker.update(bad).is_err());
    }
    assert_eq!(ranker.version(), 0);
    assert_eq!(ranker.dataset().len(), 25);
    for (q, want) in query_fan(2, 10).into_iter().zip(before) {
        assert_eq!(ranker.respond(&SuggestRequest::new(q)).unwrap(), want);
    }
}

#[test]
fn oracle_rebinds_to_updated_population() {
    // Inserting many group-1 items must change what "at most 3 of group 0
    // in the top-6" means in practice: the rebound oracle sees the new
    // items. We verify by checking suggestions stay *fair* on the updated
    // dataset per a freshly constructed oracle.
    use fairrank_fairness::FairnessOracle as _;
    let ds = generic::uniform(30, 2, 0.95, 23);
    let mut ranker = FairRanker::builder(ds.clone(), Box::new(oracle_for(&ds, 6, 3)))
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    for i in 0..5 {
        ranker
            .update(DatasetUpdate::Insert {
                scores: vec![0.9 - 0.1 * f64::from(i), 0.85],
                groups: vec![1],
            })
            .unwrap();
    }
    let fresh_oracle = oracle_for(ranker.dataset(), 6, 3);
    for q in query_fan(2, 20) {
        let sug = ranker.respond(&SuggestRequest::new(q.clone())).unwrap();
        if let KnownFairness::Suggested { .. } = sug.fairness {
            assert!(
                fresh_oracle.is_satisfactory(&ranker.dataset().rank(&sug.weights)),
                "suggestion unfair on updated dataset at {q:?}"
            );
        }
    }
}
