//! The network tier must be invisible in the answers — the CI gate for
//! `fairrank-net`:
//!
//! * answers fetched over loopback HTTP are **bit-identical** to direct
//!   [`FairRanker::respond_batch`] on the same snapshot;
//! * a replica bootstrapped over the replication stream answers
//!   bit-identically to the writer at the same version;
//! * replicas catch up after a burst of live updates and converge to
//!   the writer's version (reported through `/healthz`);
//! * overload maps to 503 with a `Retry-After` hint, not to dropped
//!   connections or wrong answers.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fairrank::geometry::HALF_PI;
use fairrank::{DatasetUpdate, FairRanker, Strategy, SuggestRequest, Suggestion};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::{FairnessOracle, FnOracle, Proportionality};
use fairrank_net::json::{decode_suggestion, encode_request, Json};
use fairrank_net::{Client, HttpServer, Replica, ReplicaOptions, ReplicatedWriter, ServerConfig};
use fairrank_serve::FairRankService;

fn oracle_for(ds: &Dataset) -> Box<dyn FairnessOracle> {
    let attr = ds.type_attribute("group").unwrap();
    let k = (ds.len() / 4).max(4);
    Box::new(Proportionality::new(attr, k).with_max_count(0, (k * 3).div_ceil(5)))
}

fn build_ranker(n: usize, seed: u64) -> FairRanker {
    let ds = generic::uniform(n, 2, 0.9, seed);
    let oracle = oracle_for(&ds);
    FairRanker::builder(ds, oracle)
        .strategy(Strategy::TwoD)
        .build()
        .unwrap()
}

fn fan(count: usize) -> Vec<SuggestRequest> {
    (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
            let mut req = SuggestRequest::new(vec![0.2 + 1.5 * t.cos(), 0.2 + 0.8 * t.sin()]);
            // Exercise top-k materialization over the wire too.
            if i % 3 == 0 {
                req = req.with_top_k(5);
            }
            req
        })
        .collect()
}

fn http_suggest(client: &mut Client, req: &SuggestRequest) -> Suggestion {
    let resp = client.suggest(req).expect("http request");
    assert_eq!(
        resp.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&resp.body)
    );
    let text = std::str::from_utf8(&resp.body).expect("utf-8 body");
    decode_suggestion(&Json::parse(text).expect("json body")).expect("suggestion shape")
}

fn assert_bit_identical(got: &Suggestion, want: &Suggestion, context: &str) {
    assert_eq!(got, want, "{context}");
    // PartialEq on f64 treats 0.0 == -0.0; the wire guarantee is
    // stronger — exact bits.
    for (g, w) in got.weights.iter().zip(&want.weights) {
        assert_eq!(g.to_bits(), w.to_bits(), "{context}: weight bits diverged");
    }
}

/// Loopback HTTP answers, one at a time and batched, are bit-identical
/// to the direct synchronous path on the same snapshot.
#[test]
fn http_answers_match_direct() {
    let ranker = build_ranker(48, 71);
    let reqs = fan(30);
    let direct = ranker.snapshot().respond_batch(&reqs).unwrap();
    let service = Arc::new(FairRankService::builder(ranker).workers(2).build());
    let server = HttpServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // One request per round trip.
    for (req, want) in reqs.iter().zip(&direct) {
        let got = http_suggest(&mut client, req);
        assert_bit_identical(&got, want, &format!("single {req:?}"));
    }

    // The whole fan as one /suggest_batch body.
    let mut body = String::from("{\"requests\":[");
    for (i, req) in reqs.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&encode_request(req));
    }
    body.push_str("]}");
    let resp = client
        .request("POST", "/suggest_batch", body.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let suggestions = doc.get("suggestions").and_then(Json::as_arr).unwrap();
    assert_eq!(suggestions.len(), direct.len());
    for ((item, want), req) in suggestions.iter().zip(&direct).zip(&reqs) {
        let got = decode_suggestion(item).unwrap();
        assert_bit_identical(&got, want, &format!("batched {req:?}"));
    }
    server.shutdown();
}

/// `/stats` exposes live counters (including the in-flight gauge) and
/// `/healthz` the serving version; unknown routes 404, wrong methods
/// 405, and semantic 400s leave the connection usable.
#[test]
fn stats_healthz_and_routing() {
    let service = Arc::new(
        FairRankService::builder(build_ranker(30, 72))
            .workers(1)
            .build(),
    );
    let server =
        HttpServer::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let _ = http_suggest(&mut client, &SuggestRequest::new(vec![1.0, 0.3]));
    let resp = client.request("GET", "/stats", b"").unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(doc.get("submitted").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("completed").and_then(Json::as_u64), Some(1));
    assert!(doc.get("in_flight").and_then(Json::as_u64).is_some());
    assert!(doc.get("cache").is_some());

    let resp = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("version").and_then(Json::as_u64), Some(0));

    let resp = client.request("GET", "/nope", b"").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("DELETE", "/suggest", b"").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client
        .request("POST", "/suggest", br#"{"query":[1.0,-0.5]}"#)
        .unwrap();
    assert_eq!(resp.status, 400, "negative weight must 400");
    let resp = client
        .request("POST", "/suggest", br#"{"query":[1.0,2.0,3.0]}"#)
        .unwrap();
    assert_eq!(resp.status, 400, "dimension mismatch must 400");
    let _ = http_suggest(&mut client, &SuggestRequest::new(vec![0.5, 0.5]));
    server.shutdown();
}

/// Saturating a deliberately slow, tiny-queued service over HTTP yields
/// 503s carrying a `Retry-After` hint — and every accepted request is
/// still answered.
#[test]
fn overload_maps_to_503_with_retry_after() {
    // A sleeping oracle makes service time, not protocol overhead, the
    // bottleneck: 8 concurrent clients against a 1-worker/1-batch
    // service with a 2-slot queue must shed load.
    let ds = generic::uniform(12, 2, 0.9, 73);
    let oracle = FnOracle::new("slow-top-half", |ranking: &[u32]| {
        std::thread::sleep(Duration::from_millis(2));
        ranking[0].is_multiple_of(2) || ranking[1].is_multiple_of(2)
    });
    let ranker = FairRanker::builder(ds, Box::new(oracle))
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    let service = Arc::new(
        FairRankService::builder(ranker)
            .workers(1)
            .max_batch(1)
            .queue_capacity(2)
            .cache(false)
            .build(),
    );
    let server = HttpServer::bind(
        service,
        "127.0.0.1:0",
        ServerConfig {
            threads: 8,
            submit_timeout: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let outcomes: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let req = SuggestRequest::new(vec![1.0, 0.2 + 0.1 * f64::from(i)]);
                    let mut served = 0u64;
                    let mut shed = 0u64;
                    for _ in 0..10 {
                        let resp = client.suggest(&req).unwrap();
                        match resp.status {
                            200 => served += 1,
                            503 => {
                                let retry = resp.retry_after.expect("503 must carry retry-after");
                                assert!((1..=30).contains(&retry), "retry-after {retry}");
                                shed += 1;
                            }
                            other => panic!("unexpected status {other}"),
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let served: u64 = outcomes.iter().map(|(s, _)| s).sum();
    let shed: u64 = outcomes.iter().map(|(_, r)| r).sum();
    assert!(served > 0, "some requests must get through");
    assert!(shed > 0, "8 clients x 2ms oracle x 2-slot queue must shed");
    server.shutdown();
}

fn healthz_version(addr: SocketAddr) -> u64 {
    let mut client = Client::connect(addr).unwrap();
    let resp = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(resp.status, 200);
    Json::parse(std::str::from_utf8(&resp.body).unwrap())
        .unwrap()
        .get("version")
        .and_then(Json::as_u64)
        .unwrap()
}

fn await_version(replica: &Replica, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.version() < target {
        assert!(
            Instant::now() < deadline,
            "replica stuck at {} (target {target}, error {:?})",
            replica.version(),
            replica.error()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Replication: a replica bootstrapped from the writer answers
/// bit-identically at the same version, catches up through an update
/// burst, and reports convergence through `/healthz`.
#[test]
fn replica_matches_writer_and_catches_up() {
    let writer_service = Arc::new(
        FairRankService::builder(build_ranker(40, 74))
            .workers(2)
            .build(),
    );
    let writer = ReplicatedWriter::bind(Arc::clone(&writer_service), "127.0.0.1:0").unwrap();
    let replica = Replica::connect(
        writer.replication_addr(),
        oracle_for,
        ReplicaOptions::default(),
    )
    .unwrap();
    assert_eq!(replica.version(), 0);

    let reqs = fan(24);
    let writer_http = HttpServer::bind(
        Arc::clone(&writer_service),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let replica_http =
        HttpServer::bind(replica.service(), "127.0.0.1:0", ServerConfig::default()).unwrap();

    // Same version, bit-identical answers — writer vs replica vs direct.
    let direct = writer_service.snapshot().respond_batch(&reqs).unwrap();
    let mut writer_client = Client::connect(writer_http.local_addr()).unwrap();
    let mut replica_client = Client::connect(replica_http.local_addr()).unwrap();
    for (req, want) in reqs.iter().zip(&direct) {
        let from_writer = http_suggest(&mut writer_client, req);
        let from_replica = http_suggest(&mut replica_client, req);
        assert_bit_identical(&from_writer, want, "writer vs direct");
        assert_bit_identical(&from_replica, want, "replica vs direct");
    }

    // Burst of live updates through the writer; the replica tails the
    // update log and applies them in order.
    let updates: Vec<DatasetUpdate> = (0..6)
        .map(|i| DatasetUpdate::Insert {
            scores: vec![0.25 + 0.1 * f64::from(i), 0.65],
            groups: vec![u32::from(i % 2 == 0)],
        })
        .collect();
    let outcomes = writer.apply(&updates).unwrap();
    assert_eq!(outcomes.len(), 6);
    let target = writer_service.version();
    assert_eq!(target, 6);
    await_version(&replica, target);
    assert_eq!(healthz_version(replica_http.local_addr()), target);
    assert_eq!(replica.error(), None);

    // Converged: answers at the new version are bit-identical again.
    let direct = writer_service.snapshot().respond_batch(&reqs).unwrap();
    for (req, want) in reqs.iter().zip(&direct) {
        assert_eq!(want.version, target);
        let from_replica = http_suggest(&mut replica_client, req);
        assert_bit_identical(&from_replica, want, "replica vs direct post-update");
    }

    // A second burst with mixed update kinds, applied after a late
    // replica bootstraps mid-history: both replicas converge.
    let late = Replica::connect(
        writer.replication_addr(),
        oracle_for,
        ReplicaOptions::default(),
    )
    .unwrap();
    let more = vec![
        DatasetUpdate::Rescore {
            item: 0,
            scores: vec![0.9, 0.1],
        },
        DatasetUpdate::Remove { item: 3 },
    ];
    writer.apply(&more).unwrap();
    let target = writer_service.version();
    await_version(&replica, target);
    await_version(&late, target);
    let direct = writer_service.snapshot().respond_batch(&reqs).unwrap();
    let late_http =
        HttpServer::bind(late.service(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut late_client = Client::connect(late_http.local_addr()).unwrap();
    for (req, want) in reqs.iter().zip(&direct) {
        let a = http_suggest(&mut replica_client, req);
        let b = http_suggest(&mut late_client, req);
        assert_bit_identical(&a, want, "original replica after second burst");
        assert_bit_identical(&b, want, "late-joining replica");
    }

    late_http.shutdown();
    replica_http.shutdown();
    writer_http.shutdown();
    late.shutdown();
    replica.shutdown();
    writer.shutdown();
}

/// A byte-pumping TCP proxy with a *stable* front address and a
/// swappable backend. The replica under test connects to the front; the
/// test can then kill the writer behind it and bring up a new one on a
/// fresh port without the replica's reconnect target ever changing
/// (re-binding the old port races TIME_WAIT and other tests).
struct SwitchProxy {
    addr: SocketAddr,
    backend: Arc<std::sync::Mutex<SocketAddr>>,
    stop: Arc<std::sync::atomic::AtomicBool>,
}

impl SwitchProxy {
    fn start(backend: SocketAddr) -> SwitchProxy {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let backend = Arc::new(std::sync::Mutex::new(backend));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        {
            let backend = Arc::clone(&backend);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    let Ok(client) = conn else { return };
                    let target = *backend.lock().unwrap();
                    // Writer down: drop the connection so the replica's
                    // bootstrap fails and its backoff keeps retrying.
                    let Ok(upstream) = std::net::TcpStream::connect(target) else {
                        continue;
                    };
                    let pump = |mut from: std::net::TcpStream, mut to: std::net::TcpStream| {
                        std::thread::spawn(move || {
                            let _ = std::io::copy(&mut from, &mut to);
                            let _ = to.shutdown(std::net::Shutdown::Both);
                            let _ = from.shutdown(std::net::Shutdown::Both);
                        })
                    };
                    pump(client.try_clone().unwrap(), upstream.try_clone().unwrap());
                    pump(upstream, client);
                }
            });
        }
        SwitchProxy {
            addr,
            backend,
            stop,
        }
    }

    fn set_backend(&self, addr: SocketAddr) {
        *self.backend.lock().unwrap() = addr;
    }

    fn shutdown(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        // Unblock the accept loop.
        let _ = std::net::TcpStream::connect(self.addr);
    }
}

fn healthz_doc(client: &mut Client) -> (u16, Json) {
    let resp = client.request("GET", "/healthz", b"").unwrap();
    let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    (resp.status, doc)
}

/// Regression: the writer dies mid-stream, the replica surfaces the
/// staleness through `/healthz` (503 + `stale: true` + the last applied
/// version), and once a writer is back — with *more* history than the
/// replica ever saw, so the update log alone cannot catch it up — the
/// replica re-bootstraps on its own and converges bit-identically.
#[test]
fn replica_survives_writer_restart_with_gap() {
    let writer_service = Arc::new(
        FairRankService::builder(build_ranker(36, 75))
            .workers(2)
            .build(),
    );
    let writer = ReplicatedWriter::bind(Arc::clone(&writer_service), "127.0.0.1:0").unwrap();
    let proxy = SwitchProxy::start(writer.replication_addr());
    let replica = Replica::connect(proxy.addr, oracle_for, ReplicaOptions::default()).unwrap();
    let replica_http = HttpServer::bind(
        replica.service(),
        "127.0.0.1:0",
        ServerConfig {
            health: Some(replica.health()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut health_client = Client::connect(replica_http.local_addr()).unwrap();

    // Healthy tail: a first burst replicates, /healthz reports fresh.
    let burst = |from: u32, count: u32| -> Vec<DatasetUpdate> {
        (from..from + count)
            .map(|i| DatasetUpdate::Insert {
                scores: vec![0.2 + 0.05 * f64::from(i), 0.7],
                groups: vec![i % 2],
            })
            .collect()
    };
    writer.apply(&burst(0, 4)).unwrap();
    await_version(&replica, writer_service.version());
    let (status, doc) = healthz_doc(&mut health_client);
    assert_eq!(status, 200);
    assert_eq!(doc.get("stale").and_then(Json::as_bool), Some(false));

    // Kill the writer mid-life. The replica must notice the dead tail
    // and surface it: 503, stale: true, and the version it got stuck at.
    let stuck_at = replica.version();
    writer.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    let stale_doc = loop {
        assert!(Instant::now() < deadline, "/healthz never reported stale");
        let (status, doc) = healthz_doc(&mut health_client);
        if status == 503 {
            break doc;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(
        stale_doc.get("status").and_then(Json::as_str),
        Some("stale")
    );
    assert_eq!(stale_doc.get("stale").and_then(Json::as_bool), Some(true));
    assert_eq!(
        stale_doc.get("last_applied").and_then(Json::as_u64),
        Some(stuck_at)
    );
    assert!(stale_doc.get("reason").and_then(Json::as_str).is_some());

    // Restart: a new writer on a fresh port, seeded with the same
    // history *plus* updates the replica never saw — a log gap only a
    // full re-bootstrap can cross.
    let restarted_service = Arc::new(
        FairRankService::builder(build_ranker(36, 75))
            .workers(2)
            .build(),
    );
    restarted_service.update_batch(burst(0, 4)).unwrap();
    restarted_service.update_batch(burst(4, 3)).unwrap();
    let restarted = ReplicatedWriter::bind(Arc::clone(&restarted_service), "127.0.0.1:0").unwrap();
    proxy.set_backend(restarted.replication_addr());

    // The replica reconnects, re-bootstraps, and converges on its own.
    await_version(&replica, restarted_service.version());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, doc) = healthz_doc(&mut health_client);
        if status == 200 {
            assert_eq!(doc.get("stale").and_then(Json::as_bool), Some(false));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "/healthz stuck stale after resync"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(replica.error(), None);

    // Live replication works again after the resync, and answers are
    // bit-identical to the restarted writer's.
    restarted.apply(&burst(7, 2)).unwrap();
    await_version(&replica, restarted_service.version());
    let reqs = fan(16);
    let direct = restarted_service.snapshot().respond_batch(&reqs).unwrap();
    let mut replica_client = Client::connect(replica_http.local_addr()).unwrap();
    for (req, want) in reqs.iter().zip(&direct) {
        let got = http_suggest(&mut replica_client, req);
        assert_bit_identical(&got, want, "replica vs restarted writer");
    }

    replica_http.shutdown();
    replica.shutdown();
    restarted.shutdown();
    proxy.shutdown();
}
