//! Integration: the paper's black-box-oracle claim, end to end.
//!
//! §2: "our techniques treat the evaluation of fairness constraints as a
//! black box … and support any constraint that can be evaluated over a
//! ranked list of items." The indexing machinery was written against
//! FM1/FM2; here two structurally different oracle families — FA*IR
//! prefix fairness and position-discounted exposure fairness — drive the
//! same 2-D sweep and the same approximate grid pipeline unchanged.

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::twod::{online_2d, ray_sweep, TwoDAnswer};
use fairrank_datasets::synthetic::generic;
use fairrank_fairness::{ExposureFairness, FairnessOracle, PrefixFairness};
use fairrank_geometry::polar::to_cartesian;
use fairrank_geometry::HALF_PI;

#[test]
fn prefix_fairness_through_the_2d_sweep() {
    let ds = generic::uniform(120, 2, 0.9, 321);
    let group = ds.type_attribute("group").unwrap();
    // Group 1 (under-represented at the top of attribute-0 rankings by
    // construction) must hold ≥ 30% of every prefix of the top-20, with
    // FA*IR's α = 0.05 tolerance.
    let oracle = PrefixFairness::new(group, 1, 20, 0.30, 1.64);

    let sweep = ray_sweep(&ds, &oracle).expect("sweep");
    // Index verdicts must agree with direct oracle evaluation on a fan.
    for step in 0..60 {
        let theta = (step as f64 + 0.5) / 60.0 * HALF_PI;
        let w = [theta.cos(), theta.sin()];
        let truth = oracle.is_satisfactory(&ds.rank(&w));
        let boundary = sweep
            .intervals
            .as_slice()
            .iter()
            .any(|&(a, b)| (theta - a).abs() < 1e-6 || (theta - b).abs() < 1e-6);
        if !boundary {
            assert_eq!(sweep.intervals.contains(theta), truth, "θ = {theta}");
        }
    }

    // Online suggestions are genuinely prefix-fair.
    for step in 0..12 {
        let theta = (step as f64 + 0.5) / 12.0 * HALF_PI;
        match online_2d(&sweep.intervals, &[theta.cos(), theta.sin()]).unwrap() {
            TwoDAnswer::AlreadyFair => {}
            TwoDAnswer::Suggestion { weights, .. } => {
                assert!(oracle.is_satisfactory(&ds.rank(&weights)));
            }
            TwoDAnswer::Infeasible => assert!(sweep.intervals.is_empty()),
        }
    }
}

#[test]
fn exposure_fairness_through_the_2d_sweep() {
    let ds = generic::uniform(100, 2, 0.85, 99);
    let group = ds.type_attribute("group").unwrap();
    // Group 0's share of DCG exposure over the top-25 capped at 60%.
    let oracle = ExposureFairness::new(group, 25).with_share_bounds(0, 0.0, 0.60);

    let sweep = ray_sweep(&ds, &oracle).expect("sweep");
    for step in 0..50 {
        let theta = (step as f64 + 0.5) / 50.0 * HALF_PI;
        let w = [theta.cos(), theta.sin()];
        let truth = oracle.is_satisfactory(&ds.rank(&w));
        let boundary = sweep
            .intervals
            .as_slice()
            .iter()
            .any(|&(a, b)| (theta - a).abs() < 1e-6 || (theta - b).abs() < 1e-6);
        if !boundary {
            assert_eq!(sweep.intervals.contains(theta), truth, "θ = {theta}");
        }
    }
}

#[test]
fn exposure_and_count_oracles_induce_different_regions() {
    // The point of exposure fairness: the same counts at different
    // positions flip the verdict, so the satisfactory set differs from a
    // pure count cap with the same nominal share.
    use fairrank_fairness::Proportionality;
    let k = 20;
    let mut differ = 0usize;
    for seed in 0..12u64 {
        let ds = generic::uniform(80, 2, 0.9, seed);
        let group = ds.type_attribute("group").unwrap();
        let count = Proportionality::new(group, k).with_max_share(0, 0.6);
        let exposure = ExposureFairness::new(group, k).with_share_bounds(0, 0.0, 0.6);
        for step in 0..200 {
            let theta = (step as f64 + 0.5) / 200.0 * HALF_PI;
            let r = ds.rank(&[theta.cos(), theta.sin()]);
            if count.is_satisfactory(&r) != exposure.is_satisfactory(&r) {
                differ += 1;
            }
        }
    }
    assert!(
        differ > 0,
        "exposure weighting should disagree with plain counts somewhere \
         across 12 datasets × 200 rays"
    );
}

#[test]
fn prefix_fairness_through_the_approx_grid() {
    let ds = generic::uniform(40, 3, 0.9, 777);
    let group = ds.type_attribute("group").unwrap();
    let oracle = PrefixFairness::new(group, 1, 10, 0.25, 1.64);

    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: 200,
            max_hyperplanes: Some(250),
            ..Default::default()
        },
    )
    .expect("build");

    if !index.is_satisfiable() {
        // Legal outcome for a harsh constraint; verify by dense scan.
        for i in 0..12 {
            for j in 0..12 {
                let a = [
                    (i as f64 + 0.5) / 12.0 * HALF_PI,
                    (j as f64 + 0.5) / 12.0 * HALF_PI,
                ];
                assert!(
                    !oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, &a))),
                    "index said infeasible but {a:?} is fair"
                );
            }
        }
        return;
    }
    // Every stored function passes the real prefix oracle.
    for f in index.functions() {
        assert!(oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, f))));
    }
    // Lookups answer with fair functions across the whole space.
    for i in 0..8 {
        for j in 0..8 {
            let q = vec![
                (i as f64 + 0.5) / 8.0 * HALF_PI,
                (j as f64 + 0.5) / 8.0 * HALF_PI,
            ];
            let f = index.lookup(&q).expect("satisfiable");
            assert!(oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, f))));
        }
    }
}

#[test]
fn topk_bound_enables_pruning_for_new_oracles() {
    // Both new oracle families advertise their top-k bound, so the §8
    // pruning path applies to them exactly as to FM1.
    let ds = generic::correlated(150, 3, 0.8, 0.5, 5);
    let group = ds.type_attribute("group").unwrap();
    let prefix = PrefixFairness::new(group, 0, 8, 0.3, 1.0);
    let exposure = ExposureFairness::new(group, 8).with_share_bounds(0, 0.0, 0.7);
    for oracle in [&prefix as &dyn FairnessOracle, &exposure] {
        let k = oracle.top_k_bound().expect("bound advertised");
        let keep = fairrank::pruning::top_k_candidate_items(&ds, k);
        assert!(keep.len() < ds.len(), "correlated data must prune");
        // Soundness: the oracle's verdict is unchanged when evaluated on
        // rankings of the full data (pruning only affects which exchange
        // hyperplanes are built, not verdicts).
        let r = ds.rank(&[0.5, 0.3, 0.2]);
        let _ = oracle.is_satisfactory(&r);
    }
}
