//! Property-based suite spanning all crates: the invariants the paper's
//! correctness rests on, exercised on randomized inputs via proptest.
//!
//! Organisation mirrors the dependency stack — geometry metrics, dual
//! transform, intervals, grids, LP, then the end-to-end 2-D and
//! multi-dimensional pipelines.

use proptest::prelude::*;

use fairrank::md::{closest_satisfactory_validated, sat_regions, SatRegionsOptions};
use fairrank::twod::{online_2d, ray_sweep, TwoDAnswer};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::{FairnessOracle, Proportionality};
use fairrank_geometry::dual::{dominates, exchange_angle_2d};
use fairrank_geometry::grid::{AngleGrid, PartitionScheme};
use fairrank_geometry::interval::AngularIntervals;
use fairrank_geometry::polar::{
    angular_distance, angular_distance_cartesian, cos_angle_paper_formula, to_cartesian, to_polar,
    weights_to_angles,
};
use fairrank_geometry::{GEOM_EPS, HALF_PI};
use fairrank_lp::{simplex, Constraint, LinearProgram, LpOutcome};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A strictly positive weight vector of the given dimension.
fn positive_weights(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..10.0, d)
}

/// An angle vector in the open cube (0, π/2)^dim.
fn interior_angles(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.02f64..(HALF_PI - 0.02), dim)
}

/// An item with non-negative attribute values.
fn item(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, d)
}

// ---------------------------------------------------------------------
// Polar coordinates and the angular metric (paper §2, Appendix A.1)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// weights → (r, Θ) → weights is the identity on the positive orthant.
    #[test]
    fn polar_round_trip(w in positive_weights(4)) {
        let (r, angles) = to_polar(&w);
        prop_assert!(r > 0.0);
        for &a in &angles {
            prop_assert!((-GEOM_EPS..=HALF_PI + GEOM_EPS).contains(&a));
        }
        let back = to_cartesian(r, &angles);
        for (orig, rec) in w.iter().zip(&back) {
            prop_assert!((orig - rec).abs() < 1e-9, "{w:?} -> {back:?}");
        }
    }

    /// The angular distance ignores positive scaling of either argument —
    /// the core claim that rays, not weight vectors, are the query space.
    #[test]
    fn angular_distance_scale_invariant(
        w in positive_weights(3),
        c in 0.01f64..100.0,
    ) {
        let scaled: Vec<f64> = w.iter().map(|v| v * c).collect();
        let dist = angular_distance_cartesian(&w, &scaled);
        prop_assert!(dist.abs() < 1e-6, "distance to own scaling = {dist}");
    }

    /// Symmetry and identity of the angular metric.
    #[test]
    fn angular_distance_symmetric(a in positive_weights(4), b in positive_weights(4)) {
        let ab = angular_distance_cartesian(&a, &b);
        let ba = angular_distance_cartesian(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(angular_distance_cartesian(&a, &a) < 1e-6);
        prop_assert!((0.0..=HALF_PI + 1e-9).contains(&ab));
    }

    /// Triangle inequality on the sphere restricted to the first orthant.
    #[test]
    fn angular_distance_triangle(
        a in positive_weights(3),
        b in positive_weights(3),
        c in positive_weights(3),
    ) {
        let ab = angular_distance_cartesian(&a, &b);
        let bc = angular_distance_cartesian(&b, &c);
        let ac = angular_distance_cartesian(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "{ac} > {ab} + {bc}");
    }

    /// Equation 9 (the paper's product-form cosine in angle coordinates)
    /// agrees with the plain cartesian cosine similarity.
    #[test]
    fn paper_cosine_formula_matches_cartesian(
        a in positive_weights(4),
        b in positive_weights(4),
    ) {
        let (_, ta) = to_polar(&a);
        let (_, tb) = to_polar(&b);
        let paper = cos_angle_paper_formula(&ta, &tb);
        let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        prop_assert!((paper - dot / (na * nb)).abs() < 1e-9);
    }

    /// `angular_distance` (angle-vector form) equals the cartesian form.
    #[test]
    fn angle_and_cartesian_distances_agree(
        a in positive_weights(3),
        b in positive_weights(3),
    ) {
        let (_, ta) = to_polar(&a);
        let (_, tb) = to_polar(&b);
        let via_angles = angular_distance(&ta, &tb);
        let via_cartesian = angular_distance_cartesian(&a, &b);
        prop_assert!((via_angles - via_cartesian).abs() < 1e-9);
    }

    /// `weights_to_angles` rejects the zero vector but accepts any other
    /// non-negative vector, and its output reconstructs the input ray.
    #[test]
    fn weights_to_angles_reconstructs_ray(w in positive_weights(5)) {
        let angles = weights_to_angles(&w).expect("positive weights are a valid ray");
        let back = to_cartesian(1.0, &angles);
        let dist = angular_distance_cartesian(&w, &back);
        // arccos loses ~√ε precision near zero distance, so 1e-7 is the
        // honest bound here, not 1e-9.
        prop_assert!(dist < 1e-7, "ray not reconstructed: {dist}");
    }
}

// ---------------------------------------------------------------------
// Ordering exchanges in 2-D (paper §3.1, Eq. 2)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// At the exchange angle both items score identically; strictly on
    /// either side the ordering is strict and opposite.
    #[test]
    fn exchange_angle_ties_scores(ti in item(2), tj in item(2)) {
        let score = |t: &[f64], theta: f64| t[0] * theta.cos() + t[1] * theta.sin();
        match exchange_angle_2d(&ti, &tj) {
            Some(theta) => {
                prop_assert!((0.0..=HALF_PI).contains(&theta));
                let diff = score(&ti, theta) - score(&tj, theta);
                prop_assert!(diff.abs() < 1e-9, "tie violated: {diff}");
                // The orderings at the two axis extremes differ.
                let at_x = score(&ti, 0.0) - score(&tj, 0.0);
                let at_y = score(&ti, HALF_PI) - score(&tj, HALF_PI);
                if theta > 1e-6 && theta < HALF_PI - 1e-6
                    && at_x.abs() > 1e-9 && at_y.abs() > 1e-9 {
                    prop_assert!(at_x.signum() != at_y.signum());
                }
            }
            None => {
                // No interior exchange ⇔ one ordering everywhere: verify on
                // a fan of rays.
                let mut signs = Vec::new();
                for s in 0..20 {
                    let theta = s as f64 / 19.0 * HALF_PI;
                    let diff = score(&ti, theta) - score(&tj, theta);
                    if diff.abs() > 1e-9 {
                        signs.push(diff.signum());
                    }
                }
                prop_assert!(
                    signs.windows(2).all(|w| w[0] == w[1]),
                    "ordering flipped without an exchange angle"
                );
            }
        }
    }

    /// Dominance kills the exchange: a dominating item wins under every
    /// non-negative weight vector.
    #[test]
    fn dominance_implies_no_exchange(ti in item(3), tj in item(3)) {
        if dominates(&ti, &tj) {
            for s in 0..8 {
                for t in 0..8 {
                    let angles = [
                        s as f64 / 7.0 * HALF_PI * 0.96 + 0.02,
                        t as f64 / 7.0 * HALF_PI * 0.96 + 0.02,
                    ];
                    let w = to_cartesian(1.0, &angles);
                    let si: f64 = ti.iter().zip(&w).map(|(a, b)| a * b).sum();
                    let sj: f64 = tj.iter().zip(&w).map(|(a, b)| a * b).sum();
                    prop_assert!(si >= sj - 1e-12);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Angular intervals — the 2-D satisfactory-region index (paper §3.2–3.3)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `from_pairs` produces a sorted, disjoint, in-range normal form no
    /// matter how messy the input.
    #[test]
    fn intervals_normal_form(
        raw in prop::collection::vec((0.0f64..HALF_PI, 0.0f64..HALF_PI), 0..12)
    ) {
        let iv = AngularIntervals::from_pairs(raw.iter().map(|&(a, b)| (a.min(b), a.max(b))));
        let s = iv.as_slice();
        for w in s.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "overlap/not sorted: {s:?}");
        }
        for &(lo, hi) in s {
            prop_assert!(lo <= hi);
            prop_assert!((0.0..=HALF_PI).contains(&lo));
            prop_assert!((0.0..=HALF_PI).contains(&hi));
        }
        prop_assert!(iv.measure() <= HALF_PI + 1e-9);
    }

    /// `nearest` returns a contained point minimizing the distance, checked
    /// against a dense scan.
    #[test]
    fn intervals_nearest_is_minimal(
        raw in prop::collection::vec((0.0f64..HALF_PI, 0.0f64..HALF_PI), 1..8),
        query in 0.0f64..HALF_PI,
    ) {
        let iv = AngularIntervals::from_pairs(raw.iter().map(|&(a, b)| (a.min(b), a.max(b))));
        prop_assume!(!iv.is_empty());
        let answer = iv.nearest(query).expect("non-empty");
        prop_assert!(iv.contains(answer) || s_on_boundary(&iv, answer));
        // Dense scan lower bound.
        let mut best = f64::INFINITY;
        for s in 0..=4000 {
            let theta = s as f64 / 4000.0 * HALF_PI;
            if iv.contains(theta) {
                best = best.min((theta - query).abs());
            }
        }
        prop_assert!((answer - query).abs() <= best + 1e-3);
    }

    /// The complement partitions [0, π/2]: measures add up and membership
    /// is exclusive away from boundaries.
    #[test]
    fn intervals_complement_partitions(
        raw in prop::collection::vec((0.0f64..HALF_PI, 0.0f64..HALF_PI), 0..8),
        query in 0.0f64..HALF_PI,
    ) {
        let iv = AngularIntervals::from_pairs(raw.iter().map(|&(a, b)| (a.min(b), a.max(b))));
        let co = iv.complement();
        prop_assert!((iv.measure() + co.measure() - HALF_PI).abs() < 1e-6);
        let near_boundary = iv
            .as_slice()
            .iter()
            .chain(co.as_slice())
            .any(|&(a, b)| (query - a).abs() < 1e-6 || (query - b).abs() < 1e-6);
        if !near_boundary {
            prop_assert!(iv.contains(query) != co.contains(query));
        }
    }
}

fn s_on_boundary(iv: &AngularIntervals, x: f64) -> bool {
    iv.as_slice()
        .iter()
        .any(|&(a, b)| (x - a).abs() < 1e-9 || (x - b).abs() < 1e-9)
}

// ---------------------------------------------------------------------
// Angle-space grids (paper §5, Appendix A.2)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `locate` returns a cell whose bounds contain the probe, for both
    /// partitioning schemes and several dimensions.
    #[test]
    fn grid_locate_is_consistent(
        d in 3usize..=5,
        cells in 50usize..400,
        seed_angles in prop::collection::vec(0.001f64..0.999, 4),
    ) {
        for scheme in [PartitionScheme::EqualArea, PartitionScheme::Uniform] {
            let grid = match scheme {
                PartitionScheme::EqualArea => AngleGrid::equal_area(d, cells),
                PartitionScheme::Uniform => AngleGrid::uniform(d, cells),
            };
            let theta: Vec<f64> = seed_angles[..d - 1]
                .iter()
                .map(|&u| u * HALF_PI)
                .collect();
            let id = grid.locate(&theta);
            let (bl, tr) = grid.cell_bounds(id);
            for k in 0..d - 1 {
                prop_assert!(theta[k] >= bl[k] - 1e-9, "below cell in dim {k}");
                prop_assert!(theta[k] <= tr[k] + 1e-9, "above cell in dim {k}");
            }
            // The center must locate back to the same cell.
            let center = grid.center(id);
            prop_assert_eq!(grid.locate(&center), id);
        }
    }

    /// Neighbourhood symmetry: `a ∈ neighbors(b)` ⇔ `b ∈ neighbors(a)`.
    #[test]
    fn grid_neighbors_symmetric(cells in 30usize..150) {
        let grid = AngleGrid::equal_area(3, cells);
        for id in 0..grid.cell_count() as u32 {
            for &nb in &grid.neighbors(id) {
                prop_assert!(
                    grid.neighbors(nb).contains(&id),
                    "asymmetric neighbourhood {id} / {nb}"
                );
            }
        }
    }

    /// CELLPLANE× (quadtree pruning) finds exactly the cells the exhaustive
    /// scan finds.
    #[test]
    fn cells_crossing_matches_bruteforce(
        cells in 40usize..250,
        ti in item(3),
        tj in item(3),
    ) {
        let grid = AngleGrid::equal_area(3, cells);
        let Some(h) = fairrank::md::exchange_hyperplane(&ti, &tj) else {
            return Ok(());
        };
        let mut fast = grid.cells_crossing(&h);
        let mut slow = grid.cells_crossing_bruteforce(&h);
        fast.sort_unstable();
        slow.sort_unstable();
        prop_assert_eq!(fast, slow);
    }
}

// ---------------------------------------------------------------------
// LP substrate (paper §4.2 feasibility / witness probes)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any Optimal outcome of the simplex is primal feasible and no worse
    /// than a cloud of random feasible points.
    #[test]
    fn simplex_optimal_is_feasible_and_competitive(
        normals in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 2), 1..6),
        offsets in prop::collection::vec(0.1f64..1.5, 6),
        obj in prop::collection::vec(-1.0f64..1.0, 2),
    ) {
        let constraints: Vec<Constraint> = normals
            .iter()
            .zip(&offsets)
            .map(|(n, &b)| Constraint::le(n.clone(), b))
            .collect();
        let lp = LinearProgram::minimize(obj.clone())
            .with_constraints(constraints.clone())
            .with_box(0.0, HALF_PI);
        // Infeasible/Unbounded outcomes are legitimate; only optima carry
        // obligations.
        if let Ok(LpOutcome::Optimal { x, value }) = simplex::solve(&lp) {
            prop_assert!(lp.is_feasible_point(&x, 1e-7), "infeasible optimum {x:?}");
            prop_assert!((lp.objective_value(&x) - value).abs() < 1e-7);
            // Sample feasible points; none may beat the optimum.
            let mut rng_state = 0x9e3779b97f4a7c15u64;
            for _ in 0..200 {
                let mut p = [0.0f64; 2];
                for slot in &mut p {
                    rng_state = rng_state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *slot = (rng_state >> 11) as f64 / (1u64 << 53) as f64 * HALF_PI;
                }
                if lp.is_feasible_point(&p, 1e-9) {
                    prop_assert!(
                        lp.objective_value(&p) >= value - 1e-6,
                        "sampled point beats 'optimal'"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The two independent LP engines (dense two-phase simplex and
    /// Seidel's randomized incremental algorithm) agree on feasibility
    /// and optimal value.
    #[test]
    fn simplex_and_seidel_agree(
        normals in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 2), 1..7),
        offsets in prop::collection::vec(-0.5f64..1.5, 7),
        obj in prop::collection::vec(-1.0f64..1.0, 2),
    ) {
        use fairrank_lp::seidel::{solve_seidel, SeidelOutcome};
        let constraints: Vec<Constraint> = normals
            .iter()
            .zip(&offsets)
            .map(|(n, &b)| Constraint::le(n.clone(), b))
            .collect();
        let lp = LinearProgram::minimize(obj.clone())
            .with_constraints(constraints.clone())
            .with_box(0.0, HALF_PI);
        let via_simplex = simplex::solve(&lp);
        let via_seidel = solve_seidel(&constraints, &obj, 0.0, HALF_PI, 42)
            .expect("valid input");
        match (via_simplex, via_seidel) {
            (Ok(LpOutcome::Optimal { value, .. }), SeidelOutcome::Optimal(x)) => {
                let seidel_value = lp.objective_value(&x);
                prop_assert!(
                    (value - seidel_value).abs() < 1e-6,
                    "simplex {value} vs seidel {seidel_value}"
                );
                prop_assert!(lp.is_feasible_point(&x, 1e-7));
            }
            (Ok(LpOutcome::Infeasible), SeidelOutcome::Infeasible) => {}
            (s, z) => prop_assert!(false, "outcome mismatch: {s:?} vs {z:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Arrangement invariants (paper §4.2)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flat arrangement and arrangement tree count the same regions, and
    /// every region owns a witness that no other region accepts — the
    /// regions genuinely partition the angle box.
    #[test]
    fn arrangement_regions_partition_space(
        seed in 0u64..500,
        n in 6usize..14,
    ) {
        use fairrank_geometry::arrangement::Arrangement;
        use fairrank_geometry::arrangement_tree::ArrangementTree;
        let ds = generic::uniform(n, 3, 0.0, seed);
        let hs = fairrank::md::exchange_hyperplanes(&ds);
        prop_assume!(!hs.is_empty());

        let mut flat = Arrangement::new(2);
        let mut tree = ArrangementTree::new(2);
        for h in &hs {
            flat.insert(h.clone());
            tree.insert(h);
        }
        prop_assert_eq!(flat.region_count(), tree.region_count());

        // Each tree witness satisfies its own constraints strictly and
        // lies in exactly one region of the tree's decomposition.
        let witnesses = tree.region_witnesses();
        prop_assert_eq!(witnesses.len(), tree.region_count());
        for (constraints, w) in &witnesses {
            for c in constraints {
                prop_assert!(c.satisfied(w, 1e-9), "witness violates its region");
            }
            let owners = witnesses
                .iter()
                .filter(|(cs, _)| cs.iter().all(|c| c.satisfied(w, 1e-9)))
                .count();
            prop_assert_eq!(owners, 1, "witness claimed by {} regions", owners);
        }
    }

    /// Insertion order changes the tree's shape but not the number of
    /// regions in the final decomposition.
    #[test]
    fn arrangement_region_count_order_invariant(seed in 0u64..200) {
        use fairrank_geometry::arrangement_tree::ArrangementTree;
        let ds = generic::uniform(9, 3, 0.0, seed);
        let hs = fairrank::md::exchange_hyperplanes(&ds);
        prop_assume!(hs.len() >= 2);

        let mut forward = ArrangementTree::new(2);
        for h in &hs {
            forward.insert(h);
        }
        let mut backward = ArrangementTree::new(2);
        for h in hs.iter().rev() {
            backward.insert(h);
        }
        prop_assert_eq!(forward.region_count(), backward.region_count());
    }
}

// ---------------------------------------------------------------------
// End-to-end 2-D pipeline (paper §3)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interval index built by 2DRAYSWEEP agrees with brute-force oracle
    /// evaluation on a fan of rays, and 2DONLINE answers are fair.
    #[test]
    fn raysweep_index_matches_truth(
        seed in 0u64..1000,
        n in 20usize..60,
        kfrac in 0.2f64..0.5,
        cap_frac in 0.3f64..0.8,
    ) {
        let ds = generic::uniform(n, 2, 0.85, seed);
        let attr = ds.type_attribute("group").unwrap().clone();
        let k = ((n as f64) * kfrac).round().max(2.0) as usize;
        let cap = ((k as f64) * cap_frac).round().max(1.0) as usize;
        let oracle = Proportionality::new(&attr, k).with_max_count(0, cap);

        let sweep = ray_sweep(&ds, &oracle).unwrap();
        for s in 0..50 {
            let theta = (s as f64 + 0.5) / 50.0 * HALF_PI;
            let truth = oracle.is_satisfactory(&ds.rank(&[theta.cos(), theta.sin()]));
            let boundary = sweep
                .intervals
                .as_slice()
                .iter()
                .any(|&(a, b)| (theta - a).abs() < 1e-6 || (theta - b).abs() < 1e-6);
            if !boundary {
                prop_assert_eq!(sweep.intervals.contains(theta), truth, "θ = {}", theta);
            }
        }

        // Online answers re-validate against the oracle.
        for s in 0..10 {
            let theta = (s as f64 + 0.5) / 10.0 * HALF_PI;
            let q = [theta.cos(), theta.sin()];
            match online_2d(&sweep.intervals, &q).unwrap() {
                TwoDAnswer::AlreadyFair => {
                    prop_assert!(oracle.is_satisfactory(&ds.rank(&q)));
                }
                TwoDAnswer::Suggestion { weights, .. } => {
                    prop_assert!(oracle.is_satisfactory(&ds.rank(&weights)));
                }
                TwoDAnswer::Infeasible => prop_assert!(sweep.intervals.is_empty()),
            }
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end multi-dimensional pipeline (paper §4)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every SATREGIONS witness is genuinely satisfactory, and MDBASELINE
    /// returns fair suggestions that are no farther than the best witness.
    #[test]
    fn satregions_and_baseline_invariants(
        seed in 0u64..500,
        n in 10usize..22,
        query in interior_angles(2),
    ) {
        let ds = generic::uniform(n, 3, 0.85, seed);
        let attr = ds.type_attribute("group").unwrap().clone();
        let k = (n / 3).max(2);
        let oracle = Proportionality::new(&attr, k).with_max_count(0, (k / 2).max(1));

        let regions = sat_regions(&ds, &oracle, &SatRegionsOptions::default()).unwrap();
        for r in &regions.satisfactory {
            let w = to_cartesian(1.0, &r.witness);
            prop_assert!(oracle.is_satisfactory(&ds.rank(&w)), "witness unfair");
        }

        if let Some(ans) =
            closest_satisfactory_validated(&regions.satisfactory, &query, &ds, &oracle)
        {
            let w = to_cartesian(1.0, &ans.angles);
            prop_assert!(oracle.is_satisfactory(&ds.rank(&w)), "suggestion unfair");
            // The validated answer is never farther than the best stored
            // witness (the repair falls back to witnesses).
            let witness_best = regions
                .satisfactory
                .iter()
                .map(|r| angular_distance(&r.witness, &query))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(ans.distance <= witness_best + 1e-9);
        } else {
            prop_assert!(regions.satisfactory.is_empty());
        }
    }
}

// ---------------------------------------------------------------------
// Fairness oracles (paper §2 / §6.1 FM1–FM2)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// head_counts sums to k and satisfaction is exactly counts_satisfy.
    #[test]
    fn proportionality_counts_consistent(
        seed in 0u64..1000,
        n in 10usize..80,
        kfrac in 0.1f64..0.9,
    ) {
        let ds = generic::uniform(n, 2, 0.5, seed);
        let attr = ds.type_attribute("group").unwrap().clone();
        let k = (((n as f64) * kfrac) as usize).clamp(1, n);
        let oracle = Proportionality::new(&attr, k).with_max_share(0, 0.6);
        let ranking = ds.rank(&[0.7, 0.3]);
        let counts = oracle.head_counts(&ranking);
        prop_assert_eq!(counts.iter().sum::<usize>(), k);
        prop_assert_eq!(
            oracle.is_satisfactory(&ranking),
            oracle.counts_satisfy(&counts)
        );
    }

    /// A permutation of the tail (below k) never changes the verdict.
    #[test]
    fn verdict_depends_only_on_topk(seed in 0u64..1000, n in 20usize..60) {
        let ds = generic::uniform(n, 2, 0.7, seed);
        let attr = ds.type_attribute("group").unwrap().clone();
        let k = n / 3;
        let oracle = Proportionality::new(&attr, k).with_max_share(0, 0.55);
        let ranking = ds.rank(&[0.5, 0.5]);
        let before = oracle.is_satisfactory(&ranking);
        let mut shuffled = ranking.clone();
        shuffled[k..].reverse();
        prop_assert_eq!(before, oracle.is_satisfactory(&shuffled));
    }
}

// ---------------------------------------------------------------------
// Dataset invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `rank` orders by non-increasing score and is a permutation.
    #[test]
    fn rank_is_sorted_permutation(
        seed in 0u64..1000,
        n in 5usize..60,
        w in positive_weights(3),
    ) {
        let ds = generic::uniform(n, 3, 0.5, seed);
        let ranking = ds.rank(&w);
        prop_assert_eq!(ranking.len(), n);
        let mut seen = vec![false; n];
        for &i in &ranking {
            prop_assert!(!seen[i as usize], "duplicate in ranking");
            seen[i as usize] = true;
        }
        for pair in ranking.windows(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            prop_assert!(ds.score(&w, a) >= ds.score(&w, b) - 1e-12);
        }
    }

    /// Dominance-layer pruning preserves the exact top-k for every probe
    /// ray (the §8 soundness claim).
    #[test]
    fn pruning_preserves_topk(seed in 0u64..300, n in 20usize..60) {
        let ds = generic::anticorrelated(n, 3, 0.5, seed);
        let k = 5usize;
        let keep = fairrank::pruning::top_k_candidate_items(&ds, k);
        let keep_set: std::collections::HashSet<u32> =
            keep.iter().map(|&i| i as u32).collect();
        for s in 0..6 {
            for t in 0..6 {
                let angles = [
                    (s as f64 + 0.5) / 6.0 * HALF_PI,
                    (t as f64 + 0.5) / 6.0 * HALF_PI,
                ];
                let w = to_cartesian(1.0, &angles);
                for &idx in ds.top_k(&w, k).iter() {
                    prop_assert!(
                        keep_set.contains(&idx),
                        "top-k item {idx} pruned away"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic regression cases distilled from past proptest failures.
// ---------------------------------------------------------------------

#[test]
fn regression_zero_weight_vector_rejected() {
    assert!(weights_to_angles(&[0.0, 0.0, 0.0]).is_none());
}

#[test]
fn regression_axis_aligned_ray_round_trip() {
    // Rays on the boundary of the orthant (zero coordinates) must still
    // round-trip: the polar angles hit 0 / π/2 exactly.
    for axis in 0..4 {
        let mut w = vec![0.0; 4];
        w[axis] = 2.5;
        let (r, angles) = to_polar(&w);
        let back = to_cartesian(r, &angles);
        for (a, b) in w.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{w:?} -> {back:?}");
        }
    }
}

#[test]
fn regression_identical_items_have_no_exchange() {
    assert_eq!(exchange_angle_2d(&[0.3, 0.3], &[0.3, 0.3]), None);
}

#[test]
fn regression_duplicate_dataset_rows() {
    // Duplicated rows must not break the sweep (zero-length exchange
    // sectors).
    let rows: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            let v = (i / 2) as f64 / 6.0 + 0.1;
            vec![v, 1.0 - v]
        })
        .collect();
    let mut ds = Dataset::from_rows(vec!["x".into(), "y".into()], &rows).unwrap();
    ds.add_type_attribute(
        "group",
        vec!["a".into(), "b".into()],
        (0..12).map(|i| i % 2).collect(),
    )
    .unwrap();
    let attr = ds.type_attribute("group").unwrap().clone();
    let oracle = Proportionality::new(&attr, 4).with_max_count(0, 2);
    let sweep = ray_sweep(&ds, &oracle).unwrap();
    let _ = sweep.intervals.measure();
}

// ---------------------------------------------------------------------
// Region identity (the serving cache's soundness contract)
// ---------------------------------------------------------------------

/// The three backends, built exactly (no hyperplane truncation) so every
/// one can certify regions. Built once: arrangement/grid construction is
/// far too expensive per proptest case.
fn region_rankers() -> &'static [fairrank::FairRanker] {
    use fairrank::approximate::BuildOptions;
    use fairrank::{FairRanker, Strategy};
    static RANKERS: std::sync::OnceLock<Vec<FairRanker>> = std::sync::OnceLock::new();
    RANKERS.get_or_init(|| {
        let build = |ds: &Dataset, strategy: Strategy| {
            let attr = ds.type_attribute("group").unwrap();
            let k = (ds.len() / 4).max(2);
            let oracle = Proportionality::new(attr, k).with_max_count(0, (k * 3 / 5).max(1));
            FairRanker::builder(ds.clone(), Box::new(oracle))
                .strategy(strategy)
                .approx_options(BuildOptions {
                    n_cells: 100,
                    ..Default::default()
                })
                .build()
                .unwrap()
        };
        vec![
            build(&generic::uniform(40, 2, 0.9, 201), Strategy::TwoD),
            build(&generic::uniform(14, 3, 0.9, 202), Strategy::MdExact),
            build(&generic::uniform(24, 3, 0.85, 203), Strategy::MdApprox),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// [`IndexBackend::region_of`] soundness, the contract the serving
    /// tier's answer cache rests on: two random queries that receive the
    /// *same* region key must receive the same answer modulo the echoed
    /// query weights — the same fairness verdict, and (for suggestions)
    /// the same suggested ray. Exercised on all three backends.
    #[test]
    fn equal_region_keys_imply_equal_answers(
        q1 in positive_weights(3),
        q2 in positive_weights(3),
    ) {
        use fairrank::{KnownFairness, SuggestRequest};
        for ranker in region_rankers() {
            let d = ranker.dataset().dim();
            let (a, b) = (&q1[..d], &q2[..d]);
            let (Some(k1), Some(k2)) = (ranker.region_of(a), ranker.region_of(b)) else {
                continue;
            };
            if k1 != k2 {
                continue;
            }
            let r1 = ranker.respond(&SuggestRequest::new(a.to_vec())).unwrap();
            let r2 = ranker.respond(&SuggestRequest::new(b.to_vec())).unwrap();
            prop_assert_eq!(
                std::mem::discriminant(&r1.fairness),
                std::mem::discriminant(&r2.fairness),
                "verdict differs within region {:?}: {:?} vs {:?}",
                k1,
                r1.fairness,
                r2.fairness
            );
            if let (
                KnownFairness::Suggested { .. },
                KnownFairness::Suggested { .. },
            ) = (&r1.fairness, &r2.fairness)
            {
                // The suggested *ray* is a property of the region; only
                // its scaling follows the query's norm.
                let n1: f64 = r1.weights.iter().map(|v| v * v).sum::<f64>().sqrt();
                let n2: f64 = r2.weights.iter().map(|v| v * v).sum::<f64>().sqrt();
                for (x, y) in r1.weights.iter().zip(&r2.weights) {
                    prop_assert!(
                        (x / n1 - y / n2).abs() < 1e-9,
                        "suggested rays diverge within region {:?}: {:?} vs {:?}",
                        k1,
                        r1.weights,
                        r2.weights
                    );
                }
            }
        }
    }
}
