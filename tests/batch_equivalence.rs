//! Batch/serial equivalence: the batched oracle pipeline and the
//! rank-workspace paths must be *observationally identical* to the
//! per-probe paths they accelerate — same suggestions, same ranking
//! prefixes, same oracle-call counts (even under concurrent MARKCELL).

use proptest::prelude::*;

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::probes::batch_verdicts;
use fairrank::{FairRanker, KnownFairness, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::RankWorkspace;
use fairrank_fairness::{CountingOracle, FairnessOracle, Proportionality};
use fairrank_geometry::polar::to_cartesian;
use fairrank_geometry::HALF_PI;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `suggest_batch` answers are element-wise identical to per-query
    /// `suggest` on the 2-D index, across random datasets, constraints
    /// and query fans (axis-aligned queries included).
    #[test]
    fn suggest_batch_equals_serial_2d(
        seed in 0u64..500,
        n in 20usize..70,
        kfrac in 0.15f64..0.5,
        cap_frac in 0.3f64..0.9,
    ) {
        let ds = generic::uniform(n, 2, 0.9, seed);
        let attr = ds.type_attribute("group").unwrap().clone();
        let k = ((n as f64) * kfrac).round().max(2.0) as usize;
        let cap = ((k as f64) * cap_frac).round().max(1.0) as usize;
        let oracle = Proportionality::new(&attr, k).with_max_count(0, cap);
        let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
            .build()
            .unwrap();

        let mut queries: Vec<Vec<f64>> = (0..24)
            .map(|i| {
                let t = (i as f64 + 0.5) / 24.0 * HALF_PI;
                vec![1.7 * t.cos(), 1.7 * t.sin()]
            })
            .collect();
        queries.push(vec![1.0, 0.0]); // axis-aligned boundary queries
        queries.push(vec![0.0, 1.0]);
        let reqs: Vec<SuggestRequest> = queries.into_iter().map(SuggestRequest::new).collect();

        let batch = ranker.respond_batch(&reqs).unwrap();
        prop_assert_eq!(batch.len(), reqs.len());
        for (q, b) in reqs.iter().zip(&batch) {
            let serial = ranker.respond(q).unwrap();
            prop_assert_eq!(b, &serial, "batch/serial diverged at query {:?}", q);
            // Boundary hardening: any suggestion is itself a valid query
            // inside the domain.
            if let KnownFairness::Suggested { distance } = b.fairness {
                prop_assert!(ranker.respond(&SuggestRequest::new(b.weights.clone())).is_ok());
                prop_assert!((0.0..=HALF_PI + 1e-9).contains(&distance));
            }
        }
    }

    /// Workspace partial top-k ranking agrees with the full
    /// `Dataset::rank` prefix for random weights and bounds, and the
    /// tail is still a permutation of the remaining items.
    #[test]
    fn workspace_topk_agrees_with_full_rank(
        seed in 0u64..1000,
        n in 5usize..120,
        k in 1usize..140,
        w in prop::collection::vec(0.01f64..5.0, 3),
    ) {
        let ds = generic::uniform(n, 3, 0.5, seed);
        let full = ds.rank(&w);
        let mut ws = RankWorkspace::new();
        let partial = ws.rank_with_bound(&ds, &w, Some(k)).to_vec();
        let k_eff = k.min(n);
        prop_assert_eq!(&partial[..k_eff], &full[..k_eff]);
        let mut sorted = partial.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<u32>>());
        // Unbounded workspace ranking is bit-identical to Dataset::rank.
        prop_assert_eq!(ws.rank(&ds, &w), full.as_slice());
    }

    /// `batch_verdicts` equals serial oracle probing for random
    /// candidate sets.
    #[test]
    fn batched_probe_verdicts_equal_serial(
        seed in 0u64..500,
        n in 10usize..50,
        probes in 1usize..150,
    ) {
        let ds = generic::uniform(n, 3, 0.8, seed);
        let attr = ds.type_attribute("group").unwrap().clone();
        let k = (n / 3).max(2);
        let oracle = Proportionality::new(&attr, k).with_max_count(0, (k / 2).max(1));
        let candidates: Vec<Vec<f64>> = (0..probes)
            .map(|i| {
                vec![
                    (i as f64 + 0.5) / probes as f64 * HALF_PI,
                    ((i * 13 + 5) % probes) as f64 / probes as f64 * HALF_PI * 0.98 + 0.01,
                ]
            })
            .collect();
        let batched = batch_verdicts(&ds, &oracle, &candidates);
        prop_assert_eq!(batched.len(), candidates.len());
        for (c, v) in candidates.iter().zip(batched) {
            let serial = oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, c)));
            prop_assert_eq!(v, serial);
        }
    }
}

/// Under concurrent MARKCELL, a `CountingOracle` shared across workers
/// must see *exactly* the same number of probes the build reports — the
/// workspace/batched plumbing may not lose or double-count invocations.
#[test]
fn concurrent_markcell_probe_counts_are_exact() {
    let ds = generic::uniform(40, 3, 0.85, 7);
    let attr = ds.type_attribute("group").unwrap();
    let inner = Proportionality::new(attr, 8).with_max_count(0, 4);
    let opts = |threads| BuildOptions {
        n_cells: 150,
        max_hyperplanes: Some(200),
        threads: Some(threads),
        ..Default::default()
    };

    let counter_seq = CountingOracle::new(inner.clone());
    let seq = ApproxIndex::build(&ds, &counter_seq, &opts(1)).unwrap();
    assert_eq!(
        counter_seq.calls(),
        seq.stats().oracle_calls,
        "sequential build must report exactly the probes it made"
    );

    let counter_par = CountingOracle::new(inner.clone());
    let par = ApproxIndex::build(&ds, &counter_par, &opts(4)).unwrap();
    assert_eq!(
        counter_par.calls(),
        par.stats().oracle_calls,
        "parallel build must report exactly the probes it made"
    );

    // Parallelism must not change the artifact or the probe count.
    assert_eq!(seq.functions(), par.functions());
    assert_eq!(seq.stats().oracle_calls, par.stats().oracle_calls);
}

/// Deterministic batch/serial agreement on the approximate m-d index,
/// including infeasible and already-fair outcomes.
#[test]
fn suggest_batch_equals_serial_md_approx() {
    let ds = generic::uniform(35, 3, 0.9, 101);
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(attr, 7).with_max_count(0, 3);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .strategy(Strategy::MdApprox)
        .approx_options(BuildOptions {
            n_cells: 200,
            max_hyperplanes: Some(120),
            ..Default::default()
        })
        .build()
        .unwrap();
    let queries: Vec<Vec<f64>> = (0..50)
        .map(|i| {
            vec![
                1.0,
                0.01 + 0.04 * f64::from(i),
                0.02 + 0.03 * f64::from(49 - i),
            ]
        })
        .collect();
    let reqs: Vec<SuggestRequest> = queries.into_iter().map(SuggestRequest::new).collect();
    let batch = ranker.respond_batch(&reqs).unwrap();
    let mut fair = 0usize;
    for (q, b) in reqs.iter().zip(&batch) {
        assert_eq!(b, &ranker.respond(q).unwrap());
        if b.is_already_fair() {
            fair += 1;
        }
    }
    assert!(fair < reqs.len(), "bias should leave some queries unfair");
}
