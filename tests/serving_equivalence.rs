//! Sharded serving and strategy selection must be invisible in the
//! answers: `respond_batch_parallel` is element-wise identical to serial
//! `respond` on every backend and shard count, and `Strategy::Auto`
//! answers bit-identically to the explicit strategy it resolves to.

use proptest::prelude::*;

use fairrank::approximate::BuildOptions;
use fairrank::md::SatRegionsOptions;
use fairrank::{FairRanker, Strategy, SuggestRequest, Suggestion};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::Proportionality;
use fairrank_geometry::HALF_PI;

fn oracle_for(ds: &Dataset, kfrac: f64, cap_frac: f64) -> Proportionality {
    let attr = ds.type_attribute("group").unwrap();
    let k = ((ds.len() as f64) * kfrac).round().max(2.0) as usize;
    let cap = ((k as f64) * cap_frac).round().max(1.0) as usize;
    Proportionality::new(attr, k).with_max_count(0, cap)
}

fn builder_for(ds: &Dataset, oracle: &Proportionality) -> fairrank::FairRankerBuilder {
    FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
        .sat_regions_options(SatRegionsOptions {
            max_hyperplanes: Some(50),
            ..Default::default()
        })
        .approx_options(BuildOptions {
            n_cells: 120,
            max_hyperplanes: Some(80),
            ..Default::default()
        })
}

/// Queries spanning the orthant, including axis-aligned boundaries.
fn fan(d: usize, count: usize) -> Vec<Vec<f64>> {
    let mut queries: Vec<Vec<f64>> = (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
            let mut q = vec![0.2 + 0.8 * t.sin(); d];
            q[0] = 0.2 + 1.5 * t.cos();
            q[i % d] += 0.9;
            q
        })
        .collect();
    let mut axis0 = vec![0.0; d];
    axis0[0] = 1.0;
    let mut axis1 = vec![0.0; d];
    axis1[d - 1] = 2.0;
    queries.push(axis0);
    queries.push(axis1);
    queries
}

fn assert_parallel_matches_serial(ranker: &FairRanker, queries: &[Vec<f64>]) {
    let reqs: Vec<SuggestRequest> = queries.iter().cloned().map(SuggestRequest::new).collect();
    let serial: Vec<Suggestion> = reqs.iter().map(|r| ranker.respond(r).unwrap()).collect();
    let batch = ranker.respond_batch(&reqs).unwrap();
    assert_eq!(batch, serial, "respond_batch diverged from serial");
    for shards in [0, 1, 2, 3, 4, 9] {
        let parallel = ranker.respond_batch_parallel(&reqs, shards).unwrap();
        // The sharded path may answer the fairness pre-check from the
        // index (`stats.index_decided`); weights and verdicts must agree
        // with the serial oracle path on every query.
        for ((r, p), s) in reqs.iter().zip(&parallel).zip(&serial) {
            assert_eq!(
                (&p.weights, &p.fairness, p.version),
                (&s.weights, &s.fairness, s.version),
                "respond_batch_parallel diverged at {shards} shards on {r:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 2-D backend: the sharded path (index-decided fairness + worker
    /// threads) answers exactly like per-query `suggest`.
    #[test]
    fn parallel_equals_serial_twod(
        seed in 0u64..400,
        n in 20usize..70,
        kfrac in 0.15f64..0.5,
        cap_frac in 0.3f64..0.9,
    ) {
        let ds = generic::uniform(n, 2, 0.9, seed);
        let oracle = oracle_for(&ds, kfrac, cap_frac);
        let ranker = builder_for(&ds, &oracle)
            .strategy(Strategy::TwoD)
            .build()
            .unwrap();
        assert_parallel_matches_serial(&ranker, &fan(2, 40));
    }

    /// Exact m-D backend (oracle stays in the loop per shard).
    #[test]
    fn parallel_equals_serial_md_exact(
        seed in 0u64..200,
        n in 12usize..26,
    ) {
        let ds = generic::uniform(n, 3, 0.9, seed);
        let oracle = oracle_for(&ds, 0.3, 0.5);
        let ranker = builder_for(&ds, &oracle)
            .strategy(Strategy::MdExact)
            .build()
            .unwrap();
        assert_parallel_matches_serial(&ranker, &fan(3, 18));
    }

    /// Approximate grid backend.
    #[test]
    fn parallel_equals_serial_md_approx(
        seed in 0u64..200,
        n in 20usize..45,
    ) {
        let ds = generic::uniform(n, 3, 0.85, seed);
        let oracle = oracle_for(&ds, 0.25, 0.5);
        let ranker = builder_for(&ds, &oracle)
            .strategy(Strategy::MdApprox)
            .build()
            .unwrap();
        assert_parallel_matches_serial(&ranker, &fan(3, 24));
    }

    /// `Strategy::Auto` builds the same index — and therefore answers
    /// bit-identically — as the explicit strategy it resolves to, on
    /// datasets straddling every branch of the rule (d = 2, small m-D,
    /// large m-D).
    #[test]
    fn auto_matches_explicit_strategy(
        seed in 0u64..300,
        shape in 0usize..3,
    ) {
        let (n, d) = match shape {
            0 => (40, 2),                                        // → TwoD
            1 => (fairrank::backend::AUTO_EXACT_MAX_ITEMS, 3),   // → MdExact
            _ => (fairrank::backend::AUTO_EXACT_MAX_ITEMS + 8, 3), // → MdApprox
        };
        let ds = generic::uniform(n, d, 0.85, seed);
        let oracle = oracle_for(&ds, 0.25, 0.6);
        let picked = Strategy::Auto.pick(&ds);
        let auto = builder_for(&ds, &oracle).build().unwrap();
        let explicit = builder_for(&ds, &oracle).strategy(picked).build().unwrap();
        prop_assert_eq!(auto.backend_stats(), explicit.backend_stats());
        for q in fan(d, 16) {
            let req = SuggestRequest::new(q.clone());
            prop_assert_eq!(
                auto.respond(&req).unwrap(),
                explicit.respond(&req).unwrap(),
                "Auto ({:?}) diverged at {:?}", picked, q
            );
        }
    }
}

/// Shard-count clamping regressions: degenerate shard requests (0 =
/// auto, more shards than queries, absurdly large counts) must clamp to
/// the query count — never panic, never spawn empty workers, and always
/// answer element-wise identically to serial `suggest`.
#[test]
fn degenerate_shard_counts_clamp() {
    let ds = generic::uniform(30, 2, 0.9, 404);
    let oracle = oracle_for(&ds, 0.25, 0.6);
    let ranker = builder_for(&ds, &oracle)
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    let reqs: Vec<SuggestRequest> = fan(2, 7).into_iter().map(SuggestRequest::new).collect();
    let serial: Vec<Suggestion> = reqs.iter().map(|r| ranker.respond(r).unwrap()).collect();
    for shards in [0, 1, reqs.len(), reqs.len() + 1, 1000, usize::MAX] {
        let parallel = ranker.respond_batch_parallel(&reqs, shards).unwrap();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.weights, s.weights, "diverged at shards = {shards}");
            assert_eq!(p.fairness, s.fairness, "diverged at shards = {shards}");
        }
    }
    // Empty batches under every degenerate shard count.
    for shards in [0, 1, 5, usize::MAX] {
        assert_eq!(ranker.respond_batch_parallel(&[], shards).unwrap(), vec![]);
    }
    // A single request never spawns workers, whatever the shard request.
    for shards in [0, 1, 64, usize::MAX] {
        let one = ranker.respond_batch_parallel(&reqs[..1], shards).unwrap();
        assert_eq!(one[0].weights, serial[0].weights);
        assert_eq!(one[0].fairness, serial[0].fairness);
    }
}

/// Invalid queries surface the error under degenerate shard counts too
/// (checked upfront — no partial answers, no worker panics).
#[test]
fn degenerate_shard_counts_still_validate() {
    let ds = generic::uniform(20, 2, 0.9, 405);
    let oracle = oracle_for(&ds, 0.25, 0.6);
    let ranker = builder_for(&ds, &oracle)
        .strategy(Strategy::TwoD)
        .build()
        .unwrap();
    let bad: Vec<SuggestRequest> = vec![
        SuggestRequest::new(vec![1.0, 1.0]),
        SuggestRequest::new(vec![-1.0, 0.5]),
        SuggestRequest::new(vec![0.4, 0.4]),
    ];
    for shards in [0, 2, 100, usize::MAX] {
        assert!(ranker.respond_batch_parallel(&bad, shards).is_err());
    }
}
