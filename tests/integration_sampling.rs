//! Integration: §5.4 sampling for large-scale settings, on the DOT-like
//! dataset — preprocess on a uniform sample, validate on the full data.

use fairrank::approximate::BuildOptions;
use fairrank::sampling::{build_on_sample, validate_against};
use fairrank_datasets::synthetic::dot::{self, DotConfig};
use fairrank_fairness::Proportionality;

#[test]
fn dot_sampled_index_validates_on_full_data() {
    // Scaled-down §6.4: 40k flights with the paper's 1,000-row sample
    // (the bench harness runs the full 1.32M configuration). The paper's
    // constraint has ±5% slack over base proportions; a top-100 share
    // estimate from a 1,000-row sample has σ ≈ 0.04, so verdicts
    // transfer.
    let full = dot::generate(&DotConfig {
        n: 40_000,
        ..Default::default()
    });
    let airline = full.type_attribute("airline_name").unwrap();
    let majors = dot::major_carrier_groups();
    let props = airline.group_proportions();
    let k_full = full.len() / 10;
    let full_oracle =
        Proportionality::new(airline, k_full).with_proportional_caps(&props, 0.05, Some(&majors));

    let (index, sample) = build_on_sample(
        &full,
        1000,
        0xD07,
        |s| {
            let attr = s.type_attribute("airline_name").unwrap();
            let p = attr.group_proportions();
            Box::new(
                Proportionality::new(attr, s.len() / 10).with_proportional_caps(
                    &p,
                    0.05,
                    Some(&majors),
                ),
            )
        },
        &BuildOptions {
            n_cells: 600,
            max_hyperplanes: Some(1500),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(sample.len(), 1000);
    assert!(index.is_satisfiable(), "carrier caps are satisfiable");

    let report = validate_against(&index, &full, &full_oracle);
    assert!(report.functions_checked > 0);
    // The paper observed 100%; allow slight slack for the synthetic data.
    assert!(
        report.success_rate() >= 0.9,
        "only {}/{} sampled functions transferred",
        report.satisfactory,
        report.functions_checked
    );
}

#[test]
fn tighter_caps_reduce_but_do_not_break_transfer() {
    // 4% slack instead of 5%: closer to the carriers' worst-case top-share
    // deviation (~+3 points), so more of the space is near-boundary, but
    // verdicts must still transfer. (At slack equal to the worst-case
    // deviation the truth itself flips across the whole space and *no*
    // sampling scheme can transfer — that regime is exercised by
    // `sampling_noise_destroys_transfer_at_boundary` below.)
    let full = dot::generate(&DotConfig {
        n: 10_000,
        ..Default::default()
    });
    let airline = full.type_attribute("airline_name").unwrap();
    let majors = dot::major_carrier_groups();
    let props = airline.group_proportions();
    let full_oracle = Proportionality::new(airline, full.len() / 10).with_proportional_caps(
        &props,
        0.04,
        Some(&majors),
    );

    let (index, _) = build_on_sample(
        &full,
        1000,
        42,
        |s| {
            let attr = s.type_attribute("airline_name").unwrap();
            let p = attr.group_proportions();
            Box::new(
                Proportionality::new(attr, s.len() / 10).with_proportional_caps(
                    &p,
                    0.04,
                    Some(&majors),
                ),
            )
        },
        &BuildOptions {
            n_cells: 400,
            max_hyperplanes: Some(1000),
            ..Default::default()
        },
    )
    .unwrap();

    if index.is_satisfiable() {
        let report = validate_against(&index, &full, &full_oracle);
        // Measured ≈ 0.6: the margin left by 4% slack (~1 point) is below
        // the sample σ, so a sizeable minority of boundary cells flip —
        // still far above the ≈0.15 collapse of the boundary-regime test.
        assert!(
            report.success_rate() >= 0.5,
            "tight caps transferred poorly: {report:?}"
        );
    }
}

#[test]
fn sampling_noise_destroys_transfer_at_boundary() {
    // Failure-injection: when the cap equals the carriers' actual
    // worst-case top-share deviation, the full-data truth is unfair across
    // most of the weight space; a small noisy sample still "finds"
    // satisfactory functions, and they must NOT transfer. This documents
    // the limit of §5.4 — sampling preserves verdicts only when the
    // constraint has slack relative to the sampled estimate's noise.
    let full = dot::generate(&DotConfig {
        n: 10_000,
        ..Default::default()
    });
    let airline = full.type_attribute("airline_name").unwrap();
    let majors = dot::major_carrier_groups();
    let props = airline.group_proportions();
    // 2% slack: below the ~+3-point deviations the generator produces.
    let full_oracle = Proportionality::new(airline, full.len() / 10).with_proportional_caps(
        &props,
        0.02,
        Some(&majors),
    );

    let (index, _) = build_on_sample(
        &full,
        300, // deliberately small: top-30 share estimates have σ ≈ 0.07
        7,
        |s| {
            let attr = s.type_attribute("airline_name").unwrap();
            let p = attr.group_proportions();
            Box::new(
                Proportionality::new(attr, s.len() / 10).with_proportional_caps(
                    &p,
                    0.02,
                    Some(&majors),
                ),
            )
        },
        &BuildOptions {
            n_cells: 200,
            max_hyperplanes: Some(600),
            ..Default::default()
        },
    )
    .unwrap();

    if index.is_satisfiable() {
        let report = validate_against(&index, &full, &full_oracle);
        assert!(
            report.success_rate() < 0.7,
            "expected poor transfer at the boundary regime, got {report:?}"
        );
    }
}
