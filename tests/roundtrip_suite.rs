//! Round-trip tests for the persisted index artifacts and the CSV codec,
//! exercised through the public API: build → serialize → deserialize →
//! identical answers. The in-module unit tests cover corruption and
//! version-skew error paths; these focus on writer/reader agreement on
//! real pipeline outputs.

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::persist::{
    decode_approx_index, decode_intervals, encode_approx_index, encode_intervals,
};
use fairrank::twod::{online_2d, ray_sweep, TwoDAnswer};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::{csvio, Dataset};
use fairrank_fairness::Proportionality;
use fairrank_geometry::HALF_PI;

// ---------------------------------------------------------------------
// Persisted ApproxIndex: lookups agree everywhere after a round-trip
// ---------------------------------------------------------------------

#[test]
fn approx_index_round_trip_preserves_all_lookups() {
    let ds = generic::uniform(60, 3, 0.9, 11);
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(attr, 12).with_max_count(0, 6);
    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: 200,
            max_hyperplanes: Some(200),
            ..Default::default()
        },
    )
    .unwrap();

    let bytes = encode_approx_index(&index);
    let back = decode_approx_index(&bytes).unwrap();

    assert_eq!(back.functions(), index.functions());
    assert_eq!(back.grid().cell_count(), index.grid().cell_count());
    // Dense probe over the whole angle square: every lookup identical.
    for i in 0..40 {
        for j in 0..40 {
            let q = [
                (i as f64 + 0.5) / 40.0 * HALF_PI,
                (j as f64 + 0.5) / 40.0 * HALF_PI,
            ];
            assert_eq!(index.lookup(&q), back.lookup(&q), "diverged at {q:?}");
        }
    }
}

#[test]
fn approx_index_round_trip_is_byte_stable() {
    // encode(decode(encode(x))) == encode(x): the codec is canonical.
    let ds = generic::uniform(40, 3, 0.5, 3);
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(attr, 8).with_max_count(0, 5);
    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: 120,
            max_hyperplanes: Some(120),
            ..Default::default()
        },
    )
    .unwrap();
    let bytes = encode_approx_index(&index);
    let again = encode_approx_index(&decode_approx_index(&bytes).unwrap());
    assert_eq!(bytes, again);
}

// ---------------------------------------------------------------------
// Persisted 2-D interval index: online answers agree after a round-trip
// ---------------------------------------------------------------------

#[test]
fn interval_index_round_trip_preserves_online_answers() {
    let ds = generic::uniform(120, 2, 0.9, 21);
    let attr = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(attr, 24).with_max_count(0, 13);
    let sweep = ray_sweep(&ds, &oracle).unwrap();

    let bytes = encode_intervals(&sweep.intervals);
    let back = decode_intervals(&bytes).unwrap();
    assert_eq!(back.as_slice(), sweep.intervals.as_slice());

    for step in 0..64 {
        let theta = (step as f64 + 0.5) / 64.0 * HALF_PI;
        let q = [theta.cos(), theta.sin()];
        let a = online_2d(&sweep.intervals, &q).unwrap();
        let b = online_2d(&back, &q).unwrap();
        match (a, b) {
            (TwoDAnswer::AlreadyFair, TwoDAnswer::AlreadyFair)
            | (TwoDAnswer::Infeasible, TwoDAnswer::Infeasible) => {}
            (
                TwoDAnswer::Suggestion {
                    weights: wa,
                    distance: da,
                },
                TwoDAnswer::Suggestion {
                    weights: wb,
                    distance: db,
                },
            ) => {
                assert!((da - db).abs() < 1e-12);
                for (x, y) in wa.iter().zip(&wb) {
                    assert!((x - y).abs() < 1e-12);
                }
            }
            (x, y) => panic!("answers diverged at θ={theta}: {x:?} vs {y:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// CSV codec: parse(write(ds)) == ds
// ---------------------------------------------------------------------

fn assert_datasets_equal(a: &Dataset, b: &Dataset) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.dim(), b.dim());
    assert_eq!(a.attr_names(), b.attr_names());
    for i in 0..a.len() {
        assert_eq!(a.row(i), b.row(i), "row {i} differs");
    }
    assert_eq!(a.type_attributes().len(), b.type_attributes().len());
    for (ta, tb) in a.type_attributes().iter().zip(b.type_attributes()) {
        assert_eq!(ta.name, tb.name);
        assert_eq!(ta.labels, tb.labels);
        assert_eq!(ta.values, tb.values);
    }
}

#[test]
fn csv_text_round_trip_is_lossless() {
    let ds = generic::uniform(50, 3, 0.7, 5);
    let text = csvio::to_csv(&ds);
    let back = csvio::parse_csv(&text, &["a0", "a1", "a2"], &["group"]).unwrap();
    assert_datasets_equal(&ds, &back);
    // Full-precision floats: rankings agree exactly for any weights.
    assert_eq!(ds.rank(&[0.3, 0.5, 0.2]), back.rank(&[0.3, 0.5, 0.2]));
}

#[test]
fn csv_file_round_trip_is_lossless() {
    let ds = generic::correlated(30, 2, 0.6, 0.4, 8);
    let path = std::env::temp_dir().join("fairrank_csv_roundtrip_test.csv");
    csvio::write_csv(&ds, &path).unwrap();
    let back = csvio::read_csv(&path, &["a0", "a1"], &["group"]).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_datasets_equal(&ds, &back);
}

#[test]
fn csv_round_trip_preserves_awkward_labels() {
    // Labels containing commas, quotes and spaces must survive quoting.
    let mut ds = Dataset::from_rows(
        vec!["score".into(), "aux".into()],
        &[vec![1.0, 0.5], vec![0.25, 2.0], vec![0.125, 1.5]],
    )
    .unwrap();
    ds.add_type_attribute(
        "city",
        vec![
            "Ann Arbor, MI".into(),
            "the \"big\" one".into(),
            "plain".into(),
        ],
        vec![0, 1, 2],
    )
    .unwrap();
    let text = csvio::to_csv(&ds);
    let back = csvio::parse_csv(&text, &["score", "aux"], &["city"]).unwrap();
    assert_datasets_equal(&ds, &back);
}

#[test]
fn csv_second_generation_text_is_identical() {
    // write(parse(write(ds))) == write(ds): the codec is canonical.
    let ds = generic::anticorrelated(25, 3, 0.2, 13);
    let text = csvio::to_csv(&ds);
    let back = csvio::parse_csv(&text, &["a0", "a1", "a2"], &["group"]).unwrap();
    assert_eq!(text, csvio::to_csv(&back));
}
