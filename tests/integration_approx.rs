//! Integration: the approximate grid index (paper §5) — CELLPLANE× →
//! MARKCELL/ATC⁺ → CELLCOLORING → MDONLINE — against ground truth.

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::{FairRanker, KnownFairness, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::{compas, generic};
use fairrank_fairness::{FairnessOracle, Proportionality};
use fairrank_geometry::grid::PartitionScheme;
use fairrank_geometry::polar::{angular_distance, to_cartesian};
use fairrank_geometry::HALF_PI;

fn compas_d3(n: usize) -> fairrank_datasets::Dataset {
    compas::generate(&compas::CompasConfig {
        n,
        ..Default::default()
    })
    .project(&compas::validation_projection())
    .unwrap()
}

#[test]
fn compas_default_model_full_pipeline() {
    let ds = compas_d3(120);
    let race = ds.type_attribute("race").unwrap();
    let k = (ds.len() as f64 * 0.3).round() as usize;
    let oracle = Proportionality::new(race, k).with_max_share(0, 0.6);

    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: 800,
            max_hyperplanes: Some(600),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        index.is_satisfiable(),
        "the default FM1 model is satisfiable"
    );

    // Every assigned function must be genuinely satisfactory (MARKCELL
    // validates against the real oracle).
    for f in index.functions() {
        assert!(oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, f))));
    }

    // MDONLINE answers across the angle space are fair.
    for i in 0..8 {
        for j in 0..8 {
            let q = vec![
                (i as f64 + 0.5) / 8.0 * HALF_PI,
                (j as f64 + 0.5) / 8.0 * HALF_PI,
            ];
            let f = index.lookup(&q).expect("satisfiable index answers");
            assert!(oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, f))));
        }
    }
}

#[test]
fn approx_answers_within_theorem6_of_exact() {
    // Compare the approximate index against MDBASELINE on the same data.
    use fairrank::md::{closest_satisfactory, sat_regions, SatRegionsOptions};
    let ds = generic::uniform(22, 3, 0.95, 909);
    let group = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(group, 6).with_max_count(0, 3);

    let exact = sat_regions(&ds, &oracle, &SatRegionsOptions::default())
        .unwrap()
        .satisfactory;
    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: 900,
            ..Default::default()
        },
    )
    .unwrap();
    if exact.is_empty() {
        assert!(!index.is_satisfiable());
        return;
    }
    let bound = index.error_bound();

    for q in [[0.15, 0.2], [1.2, 0.3], [0.5, 1.3], [0.8, 0.8]] {
        let exact_res = closest_satisfactory(&exact, &q).unwrap();
        let approx_f = index.lookup(&q).unwrap();
        let approx_d = angular_distance(approx_f, &q);
        // θ_app ≤ θ_opt + bound, plus slack for the exact answer's own
        // Frank–Wolfe/linearization tolerance.
        assert!(
            approx_d <= exact_res.distance + bound + 0.15,
            "query {q:?}: approx {approx_d} vs exact {} + bound {bound}",
            exact_res.distance
        );
    }
}

#[test]
fn equal_area_and_uniform_schemes_both_sound() {
    let ds = compas_d3(60);
    let race = ds.type_attribute("race").unwrap();
    let k = 18;
    let oracle = Proportionality::new(race, k).with_max_share(0, 0.6);

    for scheme in [PartitionScheme::EqualArea, PartitionScheme::Uniform] {
        let index = ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells: 400,
                scheme,
                max_hyperplanes: Some(300),
                ..Default::default()
            },
        )
        .unwrap();
        if !index.is_satisfiable() {
            continue;
        }
        for f in index.functions() {
            assert!(
                oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, f))),
                "{scheme:?} produced an unfair function"
            );
        }
    }
}

#[test]
fn ranker_md_approx_face() {
    let ds = compas_d3(80);
    let race = ds.type_attribute("race").unwrap();
    let oracle = Proportionality::new(race, 24).with_max_share(0, 0.6);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
        .strategy(Strategy::MdApprox)
        .approx_options(BuildOptions {
            n_cells: 500,
            max_hyperplanes: Some(400),
            ..Default::default()
        })
        .build()
        .unwrap();

    let mut verdicts = (0, 0, 0);
    for step in 0..30 {
        let a = 0.05 + 0.9 * (step as f64 / 29.0);
        let q = vec![a, 1.0 - a, 0.3 + 0.02 * step as f64];
        let sug = ranker.respond(&SuggestRequest::new(q)).unwrap();
        match sug.fairness {
            KnownFairness::AlreadyFair => verdicts.0 += 1,
            KnownFairness::Suggested { .. } => {
                verdicts.1 += 1;
                assert!(oracle.is_satisfactory(&ds.rank(&sug.weights)));
            }
            KnownFairness::Infeasible => verdicts.2 += 1,
        }
    }
    // With a satisfiable index, Infeasible must never be reported.
    assert_eq!(verdicts.2, 0, "verdicts: {verdicts:?}");
}

#[test]
fn four_dimensional_build() {
    // d = 4 → three angle axes; small but complete.
    let ds = generic::uniform(14, 4, 0.8, 404);
    let group = ds.type_attribute("group").unwrap();
    let oracle = Proportionality::new(group, 4).with_max_count(0, 2);
    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: 300,
            max_hyperplanes: Some(50),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(index.grid().dim(), 3);
    if index.is_satisfiable() {
        let f = index.lookup(&[0.5, 0.5, 0.5]).unwrap();
        assert!(oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, f))));
    }
}
