//! Failure injection: unsatisfiable constraints, degenerate datasets and
//! malformed queries must degrade gracefully, never panic.

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::md::{sat_regions, SatRegionsOptions};
use fairrank::twod::ray_sweep;
use fairrank::{FairRankError, FairRanker, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::{FnOracle, Proportionality};

#[test]
fn unsatisfiable_constraint_reports_infeasible_everywhere() {
    let ds = generic::uniform(40, 2, 0.5, 1);
    let group = ds.type_attribute("group").unwrap();
    // k = 10 but both groups capped at 2 → impossible.
    let oracle = Proportionality::new(group, 10)
        .with_max_count(0, 2)
        .with_max_count(1, 2);
    assert!(!oracle.is_satisfiable_in_principle());

    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .build()
        .unwrap();
    for q in [[1.0, 0.0], [1.0, 1.0], [0.0, 1.0]] {
        let sug = ranker.respond(&SuggestRequest::new(q)).unwrap();
        assert!(sug.is_infeasible(), "{q:?} must report infeasible");
    }
}

#[test]
fn unsatisfiable_md_approx_reports_infeasible() {
    let ds = generic::uniform(20, 3, 0.5, 2);
    let o = FnOracle::new("never", |_: &[u32]| false);
    let index = ApproxIndex::build(
        &ds,
        &o,
        &BuildOptions {
            n_cells: 100,
            max_hyperplanes: Some(30),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!index.is_satisfiable());
    assert!(index.lookup(&[0.5, 0.5]).is_none());
}

#[test]
fn single_item_and_tiny_datasets() {
    let one = Dataset::from_rows(vec!["x".into(), "y".into()], &[vec![1.0, 2.0]]).unwrap();
    let o = FnOracle::new("always", |_: &[u32]| true);
    let sweep = ray_sweep(&one, &o).unwrap();
    assert_eq!(sweep.exchange_count, 0);
    assert!(!sweep.intervals.is_empty());

    let two = Dataset::from_rows(
        vec!["x".into(), "y".into(), "z".into()],
        &[vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]],
    )
    .unwrap();
    let o2 = FnOracle::new("always", |_: &[u32]| true);
    let r = sat_regions(&two, &o2, &SatRegionsOptions::default()).unwrap();
    assert!(r.region_count >= 1);
    assert_eq!(r.satisfactory.len(), r.region_count);
}

#[test]
fn all_identical_items() {
    // Every pair ties everywhere: no exchanges, one region.
    let ds = Dataset::from_rows(
        vec!["x".into(), "y".into(), "z".into()],
        &(0..10).map(|_| vec![0.5, 0.5, 0.5]).collect::<Vec<_>>(),
    )
    .unwrap();
    let o = FnOracle::new("always", |_: &[u32]| true);
    let r = sat_regions(&ds, &o, &SatRegionsOptions::default()).unwrap();
    assert_eq!(r.hyperplane_count, 0);
    assert_eq!(r.region_count, 1);
}

#[test]
fn totally_ordered_dataset_has_no_exchanges() {
    // A dominance chain: the ranking never changes with the weights.
    let ds = Dataset::from_rows(
        vec!["x".into(), "y".into()],
        &(0..8)
            .map(|i| vec![f64::from(i), f64::from(i)])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let o = FnOracle::new("top is 7", |r: &[u32]| r[0] == 7);
    let sweep = ray_sweep(&ds, &o).unwrap();
    assert_eq!(sweep.exchange_count, 0);
    // Item 7 dominates all: always satisfactory.
    assert!((sweep.intervals.measure() - fairrank::geometry::HALF_PI).abs() < 1e-9);
}

#[test]
fn malformed_queries_error_cleanly() {
    let ds = generic::uniform(30, 2, 0.5, 3);
    let o = FnOracle::new("always", |_: &[u32]| true);
    let ranker = FairRanker::builder(ds.clone(), Box::new(o))
        .build()
        .unwrap();
    for bad in [
        vec![],
        vec![1.0],
        vec![1.0, 2.0, 3.0],
        vec![f64::NAN, 1.0],
        vec![f64::NEG_INFINITY, 1.0],
        vec![-0.5, 0.5],
        vec![0.0, 0.0],
    ] {
        assert!(
            matches!(
                ranker.respond(&SuggestRequest::new(bad.clone())),
                Err(FairRankError::InvalidWeights(_))
                    | Err(FairRankError::DimensionMismatch { .. })
            ),
            "{bad:?} should be rejected"
        );
    }
}

#[test]
fn one_attribute_dataset_rejected() {
    let ds = Dataset::from_rows(vec!["x".into()], &[vec![1.0], vec![2.0]]).unwrap();
    let o = FnOracle::new("always", |_: &[u32]| true);
    assert!(matches!(
        sat_regions(&ds, &o, &SatRegionsOptions::default()),
        Err(FairRankError::TooFewAttributes)
    ));
    let o2 = FnOracle::new("always", |_: &[u32]| true);
    assert!(ApproxIndex::build(
        &ds,
        &o2,
        &BuildOptions {
            n_cells: 10,
            ..Default::default()
        }
    )
    .is_err());
}

#[test]
fn oracle_inspecting_full_ranking_is_supported() {
    // The black-box interface must allow oracles that look beyond any
    // top-k — e.g. "no two group-0 items adjacent anywhere".
    let ds = generic::uniform(25, 2, 0.7, 4);
    let groups: Vec<u32> = ds.type_attribute("group").unwrap().values.clone();
    let o = FnOracle::new("no two adjacent group-0 items", move |r: &[u32]| {
        r.windows(2)
            .all(|w| !(groups[w[0] as usize] == 0 && groups[w[1] as usize] == 0))
    });
    // Must run to completion; satisfiability depends on the draw.
    let sweep = ray_sweep(&ds, &o).unwrap();
    let _ = sweep.intervals.len();
}

#[test]
fn zero_bias_makes_everything_fair() {
    // Sanity: without group/score correlation, proportional caps with
    // slack hold for every function.
    let ds = generic::uniform(400, 2, 0.0, 5);
    let group = ds.type_attribute("group").unwrap();
    let props = group.group_proportions();
    let oracle = Proportionality::new(group, 100).with_proportional_caps(&props, 0.15, None);
    let sweep = ray_sweep(&ds, &oracle).unwrap();
    assert!(
        sweep.intervals.measure() / fairrank::geometry::HALF_PI > 0.95,
        "nearly the whole space should be satisfactory, got {}",
        sweep.intervals.measure()
    );
}
