//! Offline stand-in for the `criterion` crate.
//!
//! Exposes the bench-definition API the workspace's nine benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`])
//! with a simple adaptive wall-clock measurement instead of criterion's
//! statistical machinery.
//!
//! Mode selection mirrors how cargo invokes bench binaries: `cargo bench`
//! passes `--bench`, which enables real measurement; any other invocation
//! (e.g. a plain run) executes every benchmark body exactly once as a
//! smoke test, so bench code stays exercised without minutes of timing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: bool,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            measure,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measure: self.measure,
            measurement_time: self.measurement_time,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mt = self.measurement_time;
        let measure = self.measure;
        run_one("", &id.into(), measure, mt, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    measure: bool,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into(),
            self.measure,
            self.measurement_time,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into(),
            self.measure,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &BenchmarkId, measure: bool, time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        measure,
        budget: time,
        report: None,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    match bencher.report {
        Some(ns) => println!("bench: {label:<48} {}", fmt_ns(ns)),
        None => println!("bench: {label:<48} smoke-run ok"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:>10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:>10.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:>10.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:>10.2} s/iter", ns / 1_000_000_000.0)
    }
}

/// Passed to every benchmark body; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    measure: bool,
    budget: Duration,
    report: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            black_box(routine());
            return;
        }
        // Warm-up: find an iteration count that takes ≥ ~1% of the budget.
        let mut iters: u64 = 1;
        let min_chunk = self.budget.as_secs_f64() / 100.0;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= min_chunk || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        // Measurement: run chunks until the budget is spent, keep the
        // best (least-noisy) per-iteration time.
        let mut best = f64::INFINITY;
        let deadline = Instant::now() + self.budget;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
            best = best.min(per_iter);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.report = Some(best * 1e9);
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            measure: false,
            measurement_time: Duration::from_millis(1),
        };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("f", 1), &1, |b, _| {
            b.iter(|| calls += 1);
        });
        group.bench_function("plain", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 2);
    }

    #[test]
    fn measure_mode_reports_time() {
        let mut c = Criterion {
            measure: true,
            measurement_time: Duration::from_millis(5),
        };
        c.bench_function("spin", |b| b.iter(|| black_box(2u64.pow(10))));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
