//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the subset of the `rand 0.8` API the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, high-quality,
//! and stable across platforms, which is all the synthetic-data
//! generators and sampling code require. It is **not** the same stream
//! as upstream `StdRng` (ChaCha12), so seeds produce different data than
//! an upstream build would — fine here, since every consumer treats the
//! seed as an opaque reproducibility handle.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// Unbiased uniform integer in `[0, bound)` by rejection sampling.
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// The user-facing random-number trait.
pub trait Rng {
    /// The single required method: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state; it
            // cannot produce the all-zero state.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extension methods.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0f64..7.0);
            assert!((3.0..7.0).contains(&x));
            let y = rng.gen_range(18.0f64..=30.0);
            assert!((18.0..=30.0).contains(&y));
            let n = rng.gen_range(5usize..9);
            assert!((5..9).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input unchanged");
    }

    #[test]
    fn small_int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
