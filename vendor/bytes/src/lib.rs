//! Offline stand-in for the `bytes` crate.
//!
//! Implements the [`Buf`] / [`BufMut`] cursor traits for the two shapes
//! the workspace's binary codec actually uses: reading from `&[u8]` and
//! appending to `Vec<u8>`. All multi-byte accessors are explicit-endian,
//! matching the upstream API.

/// Read cursor over a contiguous byte source.
///
/// # Panics
/// Like upstream `bytes`, the `get_*` methods panic when fewer than the
/// required bytes remain; callers guard with [`Buf::remaining`].
pub trait Buf {
    fn remaining(&self) -> usize;

    fn copy_to_slice(&mut self, dst: &mut [u8]);

    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    #[inline]
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    #[inline]
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append cursor over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    #[inline]
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_f64_le(-1234.5678);
        out.put_slice(b"xyz");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), out.len());
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.get_f64_le(), -1234.5678);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!buf.has_remaining());
    }

    #[test]
    fn nan_bits_survive() {
        let mut out = Vec::new();
        out.put_f64_le(f64::NAN);
        let mut buf: &[u8] = &out;
        assert!(buf.get_f64_le().is_nan());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
