//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! suite uses: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//! [`prop_assume!`], the [`Strategy`] trait over ranges / tuples /
//! [`prop::collection::vec`], and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports the assertion message (which
//!   the suite's assertions already format with the offending values).
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test name, so runs are reproducible without a `proptest-regressions`
//!   directory; case counts in `ProptestConfig` are honoured exactly.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// SplitMix64 — a small, fast, deterministic generator for test input.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a) so every test has its own
        /// reproducible stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        #[inline]
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of *passing* cases required before the test succeeds.
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 strategy range");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer strategy range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + (rng.next_u64() as $t);
                    }
                    lo + (rng.next_below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

    /// The `Just` strategy: always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
    }

    /// Inclusive-lo / exclusive-hi element-count range for collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S: Strategy> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span <= 1 {
                    0
                } else {
                    rng.next_below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub use strategy::Strategy;

/// The `prop::` namespace (`prop::collection::vec(..)`).
pub mod prop {
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A strategy producing `Vec`s of `element` values with a length
        /// in `size` (a `usize` for an exact length, or a range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Drives one `proptest!`-generated test: keeps generating cases until
/// `config.cases` of them pass, skipping `prop_assume!` rejections.
///
/// # Panics
/// On the first failing case, or when rejections outnumber the case
/// budget by 64x (a degenerate `prop_assume!`).
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = test_runner::TestRng::from_name(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases).saturating_mul(64).max(1024);
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(what)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': {rejected} rejections for {passed} passing \
                     cases; prop_assume!({what}) rejects almost everything"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed (after {passed} passing cases): {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        #[allow(unreachable_code)]
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        // Bind to a bool first: negating `$cond` textually would trip
        // clippy::neg_cmp_op_on_partial_ord when the condition is a
        // float comparison. The braces keep this usable in expression
        // position (e.g. as a match-arm body).
        let __prop_assert_ok: bool = $cond;
        if !__prop_assert_ok {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{} [condition: {}]",
                    format_args!($($fmt)+),
                    stringify!($cond)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l != *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l != *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\nassertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    format_args!($($fmt)+),
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {{
        // Same bool binding as prop_assert!: avoids textual negation of
        // float comparisons (clippy::neg_cmp_op_on_partial_ord).
        let __prop_assume_ok: bool = $cond;
        if !__prop_assume_ok {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_respect_ranges() {
        let mut rng = TestRng::from_name("strategies_respect_ranges");
        for _ in 0..1000 {
            let x = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = Strategy::generate(&(3usize..=5), &mut rng);
            assert!((3..=5).contains(&n));
            let v = Strategy::generate(&prop::collection::vec(0.0f64..1.0, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            let (a, b) = Strategy::generate(&(0.0f64..1.0, 5u64..9), &mut rng);
            assert!((0.0..1.0).contains(&a) && (5..9).contains(&b));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut seen_a = Vec::new();
        crate::run_proptest(&ProptestConfig::with_cases(16), "det", |rng| {
            seen_a.push(rng.next_u64());
            Ok(())
        });
        let mut seen_b = Vec::new();
        crate::run_proptest(&ProptestConfig::with_cases(16), "det", |rng| {
            seen_b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(seen_a, seen_b);
    }

    #[test]
    #[should_panic(expected = "rejects almost everything")]
    fn degenerate_assume_is_detected() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "degenerate", |_rng| {
            Err(TestCaseError::Reject("false".into()))
        });
    }

    // The macro path itself, end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and multiple args parse.
        #[test]
        fn macro_smoke(x in 0.0f64..1.0, n in 1usize..4) {
            prop_assume!(x > 0.0001);
            prop_assert!(x < 1.0, "x out of range: {}", x);
            prop_assert_eq!(n.min(3), n);
            if n == 0 {
                return Ok(());
            }
            prop_assert_ne!(x, -1.0);
        }
    }
}
